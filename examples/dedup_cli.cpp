// dedup_cli — a real deduplicating backup tool built on the library.
//
// Stores actual files from your filesystem into an on-disk hash-addressable
// repository (FileBackend: diskchunks/ hooks/ manifests/ filemanifests/
// directories, exactly the paper's Ext3 user-space layout) using the
// BF-MHD engine, and restores them byte-exactly.
//
//   ./dedup_cli store   <repo_dir> <file...>     add files to the repo
//   ./dedup_cli restore <repo_dir> <name> <out>  restore one file
//   ./dedup_cli verify  <repo_dir> <file...>     store-then-verify files
//   ./dedup_cli delete  <repo_dir> <name...>     forget files (then gc)
//   ./dedup_cli gc      <repo_dir>               reclaim unreferenced data
//   ./dedup_cli scrub   <repo_dir>               full integrity check
//   ./dedup_cli stats   <repo_dir>               repository statistics
//
// Daemon mode (the multi-tenant server, see src/mhd/server/):
//
//   ./dedup_cli serve <repo_dir>                 run the dedup daemon
//       --listen=unix:<path>|tcp:<port>  (default unix:<repo>/daemon.sock)
//       --max-sessions=8 --retry-after-ms=100
//       --session-queue-depth=16  (accepted; inert since the engine
//                                  reads the socket directly)
//       --tenant-quota-mb=N --tenant-quota-files=N   per-tenant limits
//       --serve-seconds=N                stop after N seconds (tests)
//       --idle-timeout-ms=N              reap sessions idle for N ms
//                                        (default 30000, 0 = never)
//       --fsck-on-start                  repair crash residue (offline
//                                        fsck with repair) before
//                                        accepting traffic; refuses to
//                                        serve a still-damaged repo
//       --net-fault-plan=SPEC            deterministic network chaos on
//                                        accepted connections, e.g.
//                                        torn@3,reset@7,seed:42 (see
//                                        server/fault_conn.h grammar)
//   ./dedup_cli put   <spec> <tenant> <file...>  ingest via a daemon
//   ./dedup_cli get   <spec> <tenant> <name> <out>
//       put/get/ls/dstats/maintain take --retries=N --retry-budget-ms=N:
//       with retries the client absorbs Busy/Retry responses and
//       transport failures by reconnecting and re-sending (PUTs replay
//       the file from the start; GETs retry only while nothing has been
//       written yet).
//   ./dedup_cli ls    <spec> <tenant>            tenant's files (JSON)
//   ./dedup_cli dstats <spec> [--reset]          daemon stats (JSON);
//                                                --reset zeroes latency
//                                                histograms atomically
//   ./dedup_cli maintain <spec> <gc|fsck>        online maintenance
//   (<spec> is the daemon's listen spec, e.g. unix:/repo/daemon.sock)
//
// Mutating commands (store/verify/delete/gc/serve) take the repository's
// store.lock: two writers on one repo fail fast with a typed error
// instead of corrupting each other (see store/store_lock.h).
//
// Options: --ecs=4096 --sd=64 --chunker=rabin|tttd|gear
//          --chunker-impl=auto|scalar|simd
//          --hash-impl=auto|shani|simd|portable   SHA-1 kernel selection
//          --index-impl=mem|disk|sampled   fingerprint-index routing.
//          `disk` persists the index under the repo's index/ namespace
//          with a bounded page cache, so a reopened repo deduplicates
//          against its history without rebuilding an in-RAM map.
//          `sampled` keeps only a sparse similarity hook table resident
//          (fingerprints with --sample-bits low zero bits); hook hits
//          load up to --champions similar segments, and the dedup loss
//          from sampling is counted, never hidden. Like --framed, the
//          choice is sticky: later commands detect an existing on-disk
//          or sampled index and keep using it without the flag.
//          --index-cache-mb=8   hot bucket-page cache budget (K/M/G
//          suffixes accepted; bare number means MB)
//          --index-bloom-bits-per-key=10   negative-lookup bloom sizing
//          --sample-bits=6 --champions=10   sampled-tier geometry (the
//          sample rate is fixed at repo creation; the meta object wins
//          over a conflicting flag on reopen)
//          --pipeline | --ingest-threads=N   staged concurrent ingest
//          (N SHA-1 workers; 0 = serial; stored bytes are bit-identical)
//          --framed    store with CRC32C self-verification framing.
//          A framed repository is self-describing (a `framed` marker in
//          the repo root): later commands detect it and read through the
//          verifying layer without the flag — a framed repo can never be
//          misread as raw bytes. examples/fsck_cli checks and repairs
//          such repositories.
//          --fault-plan=SPEC   inject deterministic storage faults below
//          the framing, e.g. --fault-plan=torn@120:0.5,readerr@3x2,seed:7
//          (see store/fault_backend.h for the mini-language)
//          --container-mb=N   pack chunk data into fixed-size containers
//          (the fragmentation-aware layout). Sticky like --framed: store
//          drops a `container-size` marker recording the size and
//          every later command reads through the container layer without
//          the flag. --restore-cache-mb budgets the restore path's
//          whole-container LRU cache.
//          --rewrite=none|cbr|har   dedup-time fragmentation control on
//          container repos: cbr caps distinct old containers per segment,
//          har rewrites duplicates out of containers that went sparse.
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <optional>
#include <thread>

#include "mhd/core/mhd_engine.h"
#include "mhd/dedup/rewrite.h"
#include "mhd/index/persistent_index.h"
#include "mhd/index/sampled_index.h"
#include "mhd/metrics/metrics.h"
#include "mhd/server/client.h"
#include "mhd/server/daemon.h"
#include "mhd/store/container_store.h"
#include "mhd/store/fault_backend.h"
#include "mhd/store/file_backend.h"
#include "mhd/store/framed_backend.h"
#include "mhd/store/maintenance.h"
#include "mhd/store/restore_reader.h"
#include "mhd/store/scrub.h"
#include "mhd/store/store_lock.h"
#include "mhd/util/flags.h"

namespace {

using namespace mhd;

/// ByteSource over an ifstream.
class FileSource final : public ByteSource {
 public:
  explicit FileSource(const std::string& path)
      : in_(path, std::ios::binary) {}
  bool ok() const { return static_cast<bool>(in_) || in_.eof(); }

  std::size_t read(MutByteSpan out) override {
    in_.read(reinterpret_cast<char*>(out.data()),
             static_cast<std::streamsize>(out.size()));
    return static_cast<std::size_t>(in_.gcount());
  }

 private:
  std::ifstream in_;
};

/// The durability stack every command talks to:
///   FileBackend -> [FaultInjectingBackend] -> [FramedBackend]
/// Faults are injected on the physical layer, below the framing that
/// exists to detect them. `active()` is the top of whatever was enabled.
class BackendStack {
 public:
  BackendStack(const std::string& root, const Flags& flags) : file_(root) {
    StorageBackend* top = &file_;
    const auto plan = flags.get("fault-plan", "");
    if (!plan.empty()) {
      faulty_.emplace(*top, FaultPlan::parse(plan));
      top = &*faulty_;
    }
    // Framing is a property of the repository, not of the invocation:
    // `store --framed` drops a marker file so every later command reads
    // through the verifying layer without the flag. Otherwise a restore
    // that forgot --framed would return the framed bytes as payload.
    const std::string marker = root + "/framed";
    bool framed = flags.get_bool("framed", false);
    if (!framed) {
      if (std::FILE* f = std::fopen(marker.c_str(), "rb")) {
        framed = true;
        std::fclose(f);
      }
    } else if (std::FILE* f = std::fopen(marker.c_str(), "wb")) {
      std::fclose(f);
    }
    if (framed) {
      framed_.emplace(*top);
      top = &*framed_;
    }
    // The container layout is likewise a repository property: the
    // `container-size` marker records the container size chosen at store
    // time, so restores/gc/scrub always resolve chunk names through the
    // extent maps instead of expecting per-chunk objects. (It cannot be
    // named `containers` — FileBackend owns a directory of that name.)
    const std::string cmarker = root + "/container-size";
    std::uint64_t container_bytes =
        flags.get_size("container-mb", 0, 0, 1ull << 40, /*unit=*/1ull << 20);
    if (container_bytes == 0) {
      if (std::FILE* f = std::fopen(cmarker.c_str(), "rb")) {
        unsigned long long v = 0;
        if (std::fscanf(f, "%llu", &v) == 1) container_bytes = v;
        std::fclose(f);
      }
    } else if (std::FILE* f = std::fopen(cmarker.c_str(), "wb")) {
      std::fprintf(f, "%llu\n",
                   static_cast<unsigned long long>(container_bytes));
      std::fclose(f);
    }
    if (container_bytes != 0) {
      ContainerConfig cc;
      cc.container_bytes = container_bytes;
      cc.cache_bytes =
          flags.get_size("restore-cache-mb", cc.cache_bytes, 64ull << 10,
                         1ull << 40, /*unit=*/1ull << 20);
      containers_.emplace(*top, cc);
      top = &*containers_;
    }
    active_ = top;
  }

  StorageBackend& active() { return *active_; }
  FileBackend& file() { return file_; }
  ContainerBackend* containers() {
    return containers_ ? &*containers_ : nullptr;
  }

 private:
  FileBackend file_;
  std::optional<FaultInjectingBackend> faulty_;
  std::optional<FramedBackend> framed_;
  std::optional<ContainerBackend> containers_;
  StorageBackend* active_ = nullptr;
};

EngineConfig config_from(const Flags& flags, const StorageBackend& backend) {
  EngineConfig cfg;
  // The index implementation is a property of the repository: once a
  // persistent (disk or sampled) index exists, keep maintaining it even
  // without the flag (an ignored on-disk index would silently go stale).
  if (flags.has("index-impl")) {
    const std::string impl =
        flags.get_choice("index-impl", {"mem", "disk", "sampled"}, "mem");
    cfg.index_impl = impl == "disk"      ? IndexImpl::kDisk
                     : impl == "sampled" ? IndexImpl::kSampled
                                         : IndexImpl::kMem;
  } else if (index_present(backend)) {
    cfg.index_impl = IndexImpl::kDisk;
  } else if (sampled_index_present(backend)) {
    cfg.index_impl = IndexImpl::kSampled;
  } else {
    cfg.index_impl = IndexImpl::kMem;
  }
  cfg.sample_bits = static_cast<std::uint32_t>(
      flags.get_uint("sample-bits", cfg.sample_bits, 0, 64));
  cfg.max_champions = static_cast<std::uint32_t>(
      flags.get_uint("champions", cfg.max_champions, 1, 1024));
  cfg.index_cache_bytes =
      flags.get_size("index-cache-mb", cfg.index_cache_bytes, 64ull << 10,
                     1ull << 40, /*unit=*/1ull << 20);
  cfg.index_bloom_bits_per_key = static_cast<std::uint32_t>(
      flags.get_uint("index-bloom-bits-per-key", 10, 1, 64));
  cfg.ecs = static_cast<std::uint32_t>(flags.get_int("ecs", 4096));
  cfg.sd = static_cast<std::uint32_t>(flags.get_int("sd", 64));
  cfg.chunker = chunker_kind_from_string(flags.get("chunker", "rabin"));
  cfg.chunker_impl = chunker_impl_from_string(
      flags.get_choice("chunker-impl", {"auto", "scalar", "simd"}, "auto"));
  cfg.hash_impl = sha1_impl_from_string(flags.get_choice(
      "hash-impl", {"auto", "shani", "simd", "portable"}, "auto"));
  cfg.ingest_threads = static_cast<std::uint32_t>(flags.get_uint(
      "ingest-threads", flags.get_bool("pipeline", false) ? 4 : 0, 0, 256));
  cfg.pipeline_queue_depth = static_cast<std::uint32_t>(
      flags.get_uint("pipeline-queue-depth", 64, 1, 65536));
  cfg.rewrite = *parse_rewrite_mode(
      flags.get_choice("rewrite", {"none", "cbr", "capping", "har"}, "none"));
  return cfg;
}

int cmd_store(const Flags& flags, bool verify_after) {
  const auto& args = flags.positional();
  if (args.size() < 3) {
    std::fprintf(stderr, "usage: dedup_cli store <repo> <file...>\n");
    return 2;
  }
  const StoreLock lock = StoreLock::acquire(args[1]);
  BackendStack stack(args[1], flags);
  ObjectStore store(stack.active());
  MhdEngine engine(store, config_from(flags, stack.active()));

  for (std::size_t i = 2; i < args.size(); ++i) {
    FileSource src(args[i]);
    if (!src.ok()) {
      std::fprintf(stderr, "cannot open %s\n", args[i].c_str());
      return 1;
    }
    engine.add_file(args[i], src);
    std::printf("stored %s\n", args[i].c_str());
  }
  // One CLI invocation is one backup generation: fold this run's
  // container utilization into HAR's history, then seal the open
  // container so the repo on disk is all clean streams.
  engine.end_snapshot();
  engine.finish();
  if (auto* containers = stack.containers()) {
    containers->flush();
    const auto s = containers->stats();
    const auto& rs = engine.counters();
    std::printf("containers: %llu sealed, %.2f MB packed",
                static_cast<unsigned long long>(s.containers_sealed),
                s.packed_bytes / 1048576.0);
    if (rs.rewritten_chunks != 0) {
      std::printf(", %llu duplicate chunks rewritten (%.2f MB)",
                  static_cast<unsigned long long>(rs.rewritten_chunks),
                  rs.rewritten_bytes / 1048576.0);
    }
    std::printf("\n");
  }

  const auto& c = engine.counters();
  std::printf("input %.2f MB, new data %.2f MB, duplicate %.2f MB (%llu "
              "slices), HHR %llu\n",
              c.input_bytes / 1048576.0,
              (c.input_bytes - c.dup_bytes) / 1048576.0,
              c.dup_bytes / 1048576.0,
              static_cast<unsigned long long>(c.dup_slices),
              static_cast<unsigned long long>(c.hhr_operations));
  if (const FingerprintIndex* fp = engine.fingerprint_index()) {
    std::printf("index: %s, %llu entries, RAM high-water %.1f KB\n",
                engine.index_impl_name(),
                static_cast<unsigned long long>(fp->entry_count()),
                engine.index_ram_bytes() / 1024.0);
    if (const auto* sampled = dynamic_cast<const SampledIndex*>(fp)) {
      std::printf("sampled: %u sample bits, %llu hook entries, %llu champion "
                  "loads, missed-dup %.2f MB (%llu chunks)\n",
                  sampled->sample_bits(),
                  static_cast<unsigned long long>(sampled->hook_entries()),
                  static_cast<unsigned long long>(sampled->champion_loads()),
                  sampled->missed_dup_bytes() / 1048576.0,
                  static_cast<unsigned long long>(
                      sampled->missed_dup_chunks()));
    }
  }
  for (const auto& s : engine.pipeline_stats().stages) {
    std::printf("  stage %-5s: %2u thread(s), %8llu items, %8.2f MB, "
                "busy %.3fs, idle %.3fs, queue max %llu\n",
                s.stage.c_str(), s.threads,
                static_cast<unsigned long long>(s.items),
                s.bytes / 1048576.0, s.busy_seconds, s.idle_seconds,
                static_cast<unsigned long long>(s.queue_high_water));
  }

  if (verify_after) {
    for (std::size_t i = 2; i < args.size(); ++i) {
      const auto restored = engine.reconstruct(args[i]);
      std::ifstream in(args[i], std::ios::binary | std::ios::ate);
      const auto size = static_cast<std::size_t>(in.tellg());
      in.seekg(0);
      ByteVec original(size);
      in.read(reinterpret_cast<char*>(original.data()),
              static_cast<std::streamsize>(size));
      if (!restored || !equal(*restored, original)) {
        std::printf("VERIFY FAILED: %s\n", args[i].c_str());
        return 1;
      }
      std::printf("verified %s (%zu bytes)\n", args[i].c_str(), size);
    }
  }
  return 0;
}

int cmd_restore(const Flags& flags) {
  const auto& args = flags.positional();
  if (args.size() != 4) {
    std::fprintf(stderr, "usage: dedup_cli restore <repo> <name> <out>\n");
    return 2;
  }
  BackendStack stack(args[1], flags);
  // Streaming restore: O(buffer) memory regardless of image size.
  auto reader = RestoreReader::open(stack.active(), args[2]);
  if (!reader) {
    std::fprintf(stderr, "no such file in repo: %s\n", args[2].c_str());
    return 1;
  }
  std::ofstream out(args[3], std::ios::binary | std::ios::trunc);
  ByteVec buf(1 << 20);
  std::size_t n;
  while ((n = reader->read({buf.data(), buf.size()})) > 0) {
    out.write(reinterpret_cast<const char*>(buf.data()),
              static_cast<std::streamsize>(n));
  }
  if (!reader->ok()) {
    std::fprintf(stderr, "RESTORE INCOMPLETE: repository damaged (run "
                         "'dedup_cli scrub %s')\n", args[1].c_str());
    return 1;
  }
  std::printf("restored %s -> %s (%llu bytes)\n", args[2].c_str(),
              args[3].c_str(),
              static_cast<unsigned long long>(reader->produced()));
  if (auto* containers = stack.containers()) {
    const auto s = containers->stats();
    const double mb = reader->produced() / 1048576.0;
    std::printf("  container reads %llu (%.3f per MB), cache hits %llu, "
                "open-container hits %llu\n",
                static_cast<unsigned long long>(s.container_reads),
                mb > 0 ? s.container_reads / mb : 0.0,
                static_cast<unsigned long long>(s.cache_hits),
                static_cast<unsigned long long>(s.open_hits));
  }
  return 0;
}

int cmd_delete(const Flags& flags) {
  const auto& args = flags.positional();
  if (args.size() < 3) {
    std::fprintf(stderr, "usage: dedup_cli delete <repo> <name...>\n");
    return 2;
  }
  const StoreLock lock = StoreLock::acquire(args[1]);
  BackendStack stack(args[1], flags);
  int missing = 0;
  for (std::size_t i = 2; i < args.size(); ++i) {
    if (delete_file(stack.active(), args[i])) {
      std::printf("deleted %s (run 'gc' to reclaim space)\n", args[i].c_str());
    } else {
      std::fprintf(stderr, "not in repo: %s\n", args[i].c_str());
      ++missing;
    }
  }
  return missing == 0 ? 0 : 1;
}

int cmd_gc(const Flags& flags) {
  const auto& args = flags.positional();
  if (args.size() != 2) {
    std::fprintf(stderr, "usage: dedup_cli gc <repo>\n");
    return 2;
  }
  const StoreLock lock = StoreLock::acquire(args[1]);
  BackendStack stack(args[1], flags);
  const auto r = collect_garbage(stack.active());
  std::printf("gc: %llu live chunks kept, %llu chunks deleted (%.2f MB "
              "reclaimed), %llu manifests and %llu hooks removed\n",
              static_cast<unsigned long long>(r.live_chunks),
              static_cast<unsigned long long>(r.deleted_chunks),
              r.reclaimed_bytes / 1048576.0,
              static_cast<unsigned long long>(r.deleted_manifests),
              static_cast<unsigned long long>(r.deleted_hooks));
  if (r.deleted_containers != 0) {
    std::printf("gc: %llu fully-dead containers deleted (%.2f MB of packed "
                "copies)\n",
                static_cast<unsigned long long>(r.deleted_containers),
                r.container_bytes_reclaimed / 1048576.0);
  }
  if (r.index_rebuilt) {
    std::printf("gc: fingerprint index rebuilt, %llu entries kept, %llu "
                "dropped\n",
                static_cast<unsigned long long>(r.index_entries),
                static_cast<unsigned long long>(r.dropped_index_entries));
  }
  if (r.sampled_index_rebuilt) {
    std::printf("gc: sampled hook table rebuilt, %llu hook entries, %llu "
                "swept champions dropped\n",
                static_cast<unsigned long long>(r.sampled_hook_entries),
                static_cast<unsigned long long>(r.dropped_sampled_champions));
  }
  return 0;
}

int cmd_scrub(const Flags& flags) {
  const auto& args = flags.positional();
  if (args.size() != 2) {
    std::fprintf(stderr, "usage: dedup_cli scrub <repo>\n");
    return 2;
  }
  BackendStack stack(args[1], flags);
  const auto r = scrub_repository(stack.active());
  std::printf("scrub: %llu filemanifests, %llu manifests (%llu opaque), "
              "%llu chunks, %llu hooks\n",
              static_cast<unsigned long long>(r.file_manifests),
              static_cast<unsigned long long>(r.manifests),
              static_cast<unsigned long long>(r.opaque_manifests),
              static_cast<unsigned long long>(r.chunks),
              static_cast<unsigned long long>(r.hooks));
  if (r.index_entries != 0 || r.stale_index_entries != 0) {
    std::printf("scrub: fingerprint index has %llu entries (%llu stale, "
                "%llu hooks unindexed)\n",
                static_cast<unsigned long long>(r.index_entries),
                static_cast<unsigned long long>(r.stale_index_entries),
                static_cast<unsigned long long>(r.unindexed_hooks));
  }
  if (r.sampled_hook_entries != 0 || r.stale_sampled_champions != 0) {
    std::printf("scrub: sampled hook table has %llu entries (%llu stale "
                "champions)\n",
                static_cast<unsigned long long>(r.sampled_hook_entries),
                static_cast<unsigned long long>(r.stale_sampled_champions));
  }
  if (r.clean()) {
    std::printf("repository is CLEAN\n");
    return 0;
  }
  std::printf("PROBLEMS: %llu broken file ranges, %llu hash mismatches, "
              "%llu coverage errors, %llu dangling hooks, %llu unparseable, "
              "%llu corrupt\n",
              static_cast<unsigned long long>(r.broken_file_ranges),
              static_cast<unsigned long long>(r.manifest_hash_mismatches),
              static_cast<unsigned long long>(r.manifest_coverage_errors),
              static_cast<unsigned long long>(r.dangling_hooks),
              static_cast<unsigned long long>(r.unparseable),
              static_cast<unsigned long long>(r.corrupt_objects));
  if (r.stale_index_entries != 0) {
    std::printf("PROBLEMS: %llu stale index entries (run 'fsck_cli repair' "
                "or 'gc' to rebuild the index)\n",
                static_cast<unsigned long long>(r.stale_index_entries));
  }
  return 1;
}

int cmd_stats(const Flags& flags) {
  const auto& args = flags.positional();
  if (args.size() != 2) {
    std::fprintf(stderr, "usage: dedup_cli stats <repo>\n");
    return 2;
  }
  BackendStack stack(args[1], flags);
  StorageBackend& backend = stack.active();
  const auto m = MetadataBreakdown::from(backend);
  std::printf("repository %s\n", args[1].c_str());
  std::printf("  diskchunks    : %llu objects, %.2f MB\n",
              static_cast<unsigned long long>(m.inodes_diskchunks),
              backend.content_bytes(Ns::kDiskChunk) / 1048576.0);
  std::printf("  hooks         : %llu objects, %.1f KB\n",
              static_cast<unsigned long long>(m.inodes_hooks),
              m.hook_bytes / 1024.0);
  std::printf("  manifests     : %llu objects, %.1f KB\n",
              static_cast<unsigned long long>(m.inodes_manifests),
              m.manifest_bytes / 1024.0);
  std::printf("  filemanifests : %llu objects, %.1f KB\n",
              static_cast<unsigned long long>(m.inodes_filemanifests),
              m.filemanifest_bytes / 1024.0);
  std::printf("  metadata total: %.1f KB (incl. %llu inodes @256B)\n",
              m.total_bytes() / 1024.0,
              static_cast<unsigned long long>(m.total_inodes()));
  return 0;
}

volatile std::sig_atomic_t g_stop_requested = 0;
void on_stop_signal(int) { g_stop_requested = 1; }

int cmd_serve(const Flags& flags) {
  const auto& args = flags.positional();
  if (args.size() != 2) {
    std::fprintf(stderr, "usage: dedup_cli serve <repo>\n");
    return 2;
  }
  // The daemon is THE single writer of the repository for its lifetime.
  const StoreLock lock = StoreLock::acquire(args[1]);
  BackendStack stack(args[1], flags);

  server::DaemonConfig dc;
  dc.listen = flags.get("listen", "unix:" + args[1] + "/daemon.sock");
  dc.max_sessions = static_cast<std::uint32_t>(
      flags.get_uint("max-sessions", 8, 1, 1024));
  dc.session_queue_depth = static_cast<std::uint32_t>(
      flags.get_uint("session-queue-depth", 16, 1, 4096));
  dc.retry_after_ms = static_cast<std::uint32_t>(
      flags.get_uint("retry-after-ms", 100, 1, 60000));
  dc.quota.max_logical_bytes = flags.get_size(
      "tenant-quota-mb", 0, 0, 1ull << 50, /*unit=*/1ull << 20);
  dc.quota.max_files = flags.get_uint("tenant-quota-files", 0, 0, 1ull << 32);
  dc.idle_timeout_ms = static_cast<std::uint32_t>(
      flags.get_uint("idle-timeout-ms", 30'000, 0, 3'600'000));
  dc.net_fault_plan = flags.get("net-fault-plan", "");
  dc.engine = config_from(flags, stack.active());

  // A daemon that may be restarted over a kill -9'd repository: repair
  // crash residue before accepting traffic, on the raw layer the offline
  // fsck_cli would use.
  if (flags.get_bool("fsck-on-start", false)) {
    // The repair pass reports what it FOUND (and fixed); a read-only
    // second pass proves what is LEFT.
    const FsckReport rep = fsck_repository(stack.file(), /*repair=*/true);
    const bool clean =
        rep.clean() || fsck_repository(stack.file(), /*repair=*/false).clean();
    std::printf("fsck-on-start: %s (%llu issues found, %llu repaired)\n",
                clean ? "clean" : "damaged",
                static_cast<unsigned long long>(rep.issues.size()),
                static_cast<unsigned long long>(rep.repaired));
    if (!clean) {
      std::fprintf(stderr, "fsck-on-start: repository still damaged after "
                           "repair; refusing to serve\n");
      return 1;
    }
  }

  server::DedupDaemon daemon(stack.active(), stack.file(), dc);
  daemon.start();
  std::printf("dedup daemon listening on %s (max %u sessions)\n",
              daemon.listen_spec().c_str(), dc.max_sessions);
  std::fflush(stdout);

  std::signal(SIGINT, on_stop_signal);
  std::signal(SIGTERM, on_stop_signal);
  const std::uint64_t serve_seconds =
      flags.get_uint("serve-seconds", 0, 0, 86400);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(serve_seconds);
  while (!g_stop_requested) {
    if (serve_seconds != 0 && std::chrono::steady_clock::now() >= deadline) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  daemon.stop();
  std::printf("daemon stopped: %llu sessions served, %llu busy rejections\n",
              static_cast<unsigned long long>(daemon.sessions_served()),
              static_cast<unsigned long long>(daemon.busy_rejections()));
  std::printf("%s\n", daemon.stats_json().c_str());
  return 0;
}

/// --retries=N / --retry-budget-ms=N -> the client's backoff contract.
/// The default (0 retries) preserves the historical fail-fast behavior.
void apply_retry_flags(server::DedupClient& client, const Flags& flags) {
  server::RetryPolicy policy;
  policy.max_retries = static_cast<std::uint32_t>(
      flags.get_uint("retries", 0, 0, 10'000));
  policy.budget_ms = static_cast<std::uint32_t>(
      flags.get_uint("retry-budget-ms", 0, 0, 3'600'000));
  policy.seed = static_cast<std::uint64_t>(::getpid());
  client.set_retry_policy(policy);
}

int report(const server::DedupClient::Result& r) {
  if (r.ok) {
    std::printf("%s\n", r.message.c_str());
    return 0;
  }
  if (r.busy) {
    std::fprintf(stderr, "daemon busy, retry after %u ms\n", r.retry_after_ms);
    return 3;
  }
  std::fprintf(stderr, "%s%s\n", r.quota ? "quota: " : "error: ",
               r.message.c_str());
  return 1;
}

int cmd_client_put(const Flags& flags) {
  const auto& args = flags.positional();
  if (args.size() < 4) {
    std::fprintf(stderr, "usage: dedup_cli put <spec> <tenant> <file...>\n");
    return 2;
  }
  auto client = server::DedupClient::connect(args[1]);
  if (!client) {
    std::fprintf(stderr, "cannot connect to %s\n", args[1].c_str());
    return 1;
  }
  apply_retry_flags(*client, flags);
  for (std::size_t i = 3; i < args.size(); ++i) {
    {
      FileSource probe(args[i]);
      if (!probe.ok()) {
        std::fprintf(stderr, "cannot open %s\n", args[i].c_str());
        return 1;
      }
    }
    // Factory flavour: each (re)send attempt reopens the file, so a
    // retried PUT replays the bytes from the start.
    const std::string path = args[i];
    const int rc = report(client->put(
        args[2], path, [&path]() -> std::unique_ptr<ByteSource> {
          return std::make_unique<FileSource>(path);
        }));
    if (rc != 0) return rc;
  }
  return 0;
}

int cmd_client_get(const Flags& flags) {
  const auto& args = flags.positional();
  if (args.size() != 5) {
    std::fprintf(stderr, "usage: dedup_cli get <spec> <tenant> <name> <out>\n");
    return 2;
  }
  auto client = server::DedupClient::connect(args[1]);
  if (!client) {
    std::fprintf(stderr, "cannot connect to %s\n", args[1].c_str());
    return 1;
  }
  apply_retry_flags(*client, flags);
  std::ofstream out(args[4], std::ios::binary | std::ios::trunc);
  const auto r = client->get(args[2], args[3], [&](ByteSpan chunk) {
    out.write(reinterpret_cast<const char*>(chunk.data()),
              static_cast<std::streamsize>(chunk.size()));
  });
  if (!r.ok) {
    std::fprintf(stderr, "%s\n", r.message.c_str());
    return r.busy ? 3 : 1;
  }
  std::printf("restored %s -> %s (%llu bytes)\n", args[3].c_str(),
              args[4].c_str(), static_cast<unsigned long long>(r.produced));
  return 0;
}

int cmd_client_simple(const Flags& flags, const char* what) {
  const auto& args = flags.positional();
  const bool needs_tenant = std::string(what) == "ls";
  const bool needs_op = std::string(what) == "maintain";
  if (args.size() != (needs_tenant || needs_op ? 3u : 2u)) {
    std::fprintf(stderr, "usage: dedup_cli %s <spec>%s\n", what,
                 needs_tenant ? " <tenant>" : (needs_op ? " <gc|fsck>" : ""));
    return 2;
  }
  auto client = server::DedupClient::connect(args[1]);
  if (!client) {
    std::fprintf(stderr, "cannot connect to %s\n", args[1].c_str());
    return 1;
  }
  apply_retry_flags(*client, flags);
  if (needs_tenant) return report(client->ls(args[2]));
  if (needs_op) {
    if (args[2] == "gc") return report(client->maintain(server::MaintainOp::kGc));
    if (args[2] == "fsck") {
      return report(client->maintain(server::MaintainOp::kFsck));
    }
    std::fprintf(stderr, "unknown maintenance op: %s\n", args[2].c_str());
    return 2;
  }
  // --reset atomically zeroes the latency histograms with the snapshot
  // (bench phase boundaries); counters stay monotonic.
  return report(client->stats(flags.get_bool("reset", false)));
}

}  // namespace

int main(int argc, char** argv) {
  const mhd::Flags flags(argc, argv);
  const auto& args = flags.positional();
  if (args.empty()) {
    std::fprintf(stderr,
                 "usage: dedup_cli <store|restore|verify|stats> ...\n");
    return 2;
  }
  try {
    if (args[0] == "store") return cmd_store(flags, /*verify_after=*/false);
    if (args[0] == "verify") return cmd_store(flags, /*verify_after=*/true);
    if (args[0] == "restore") return cmd_restore(flags);
    if (args[0] == "delete") return cmd_delete(flags);
    if (args[0] == "gc") return cmd_gc(flags);
    if (args[0] == "scrub") return cmd_scrub(flags);
    if (args[0] == "stats") return cmd_stats(flags);
    if (args[0] == "serve") return cmd_serve(flags);
    if (args[0] == "put") return cmd_client_put(flags);
    if (args[0] == "get") return cmd_client_get(flags);
    if (args[0] == "ls") return cmd_client_simple(flags, "ls");
    if (args[0] == "dstats") return cmd_client_simple(flags, "dstats");
    if (args[0] == "maintain") return cmd_client_simple(flags, "maintain");
  } catch (const mhd::StoreLockedError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 4;
  } catch (const mhd::CorruptObjectError& e) {
    std::fprintf(stderr, "%s\nrun 'fsck_cli repair <repo>' to recover\n",
                 e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command: %s\n", args[0].c_str());
  return 2;
}
