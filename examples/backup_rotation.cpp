// backup_rotation — the paper's motivating scenario as a runnable demo.
//
// Simulates the full ICPP'13 workload shape: a fleet of 14 PCs (Windows /
// Linux / Mac groups) backed up nightly for two weeks, and compares all
// five algorithms on the same stream: per-day cumulative storage growth,
// final DER, metadata and modeled throughput. This is the "which dedup
// engine should my backup system use?" view of the library.
//
//   ./backup_rotation [--size_mb=48] [--ecs=1024] [--sd=32] [--seed=1]
#include <cstdio>

#include "mhd/metrics/metrics.h"
#include "mhd/sim/runner.h"
#include "mhd/util/flags.h"
#include "mhd/util/table.h"
#include "mhd/workload/presets.h"

int main(int argc, char** argv) {
  using namespace mhd;
  const Flags flags(argc, argv);
  const auto size_mb = static_cast<std::uint64_t>(flags.get_int("size_mb", 48));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  EngineConfig cfg;
  cfg.ecs = static_cast<std::uint32_t>(flags.get_int("ecs", 1024));
  cfg.sd = static_cast<std::uint32_t>(flags.get_int("sd", 32));
  cfg.manifest_cache_bytes = 256 << 10;
  cfg.manifest_cache_capacity = 4096;

  const Corpus corpus(icpp13_preset(size_mb, seed));
  std::printf("backup fleet: %u machines x %u nights, %.1f MB total\n\n",
              corpus.config().machines, corpus.config().snapshots,
              corpus.total_bytes() / 1048576.0);

  const DiskModel disk;
  TextTable summary({"Engine", "Stored MB", "Metadata MB", "Real DER",
                     "ThroughputRatio", "Dup slices", "HHR ops"});

  for (const auto& algo : engine_names()) {
    MemoryBackend backend;
    ObjectStore store(backend);
    auto engine = make_engine(algo, store, cfg);

    // Nightly rotation: print cumulative stored bytes after each night.
    std::printf("%s nightly stored-bytes growth (MB):", engine->name().c_str());
    std::uint32_t day = 0;
    for (std::size_t i = 0; i < corpus.files().size(); ++i) {
      if (corpus.files()[i].snapshot != day) {
        std::printf(" %.1f", backend.content_bytes(Ns::kDiskChunk) / 1048576.0);
        day = corpus.files()[i].snapshot;
      }
      auto src = corpus.open(i);
      engine->add_file(corpus.files()[i].name, *src);
    }
    engine->finish();
    std::printf(" %.1f\n", backend.content_bytes(Ns::kDiskChunk) / 1048576.0);

    const auto r = summarize(engine->name(), *engine, backend, disk);
    summary.add_row(
        {r.algorithm, TextTable::num(r.stored_data_bytes / 1048576.0, 1),
         TextTable::num(r.metadata.total_bytes() / 1048576.0, 2),
         TextTable::num(r.real_der(), 2),
         TextTable::num(r.throughput_ratio(), 3),
         TextTable::num(r.counters.dup_slices),
         TextTable::num(r.counters.hhr_operations)});
  }

  std::printf("\n%s", summary.to_string().c_str());
  std::printf("\nNote how every engine's nightly growth flattens after night"
              " 1 (daily images mostly\nduplicate), and how BF-MHD reaches "
              "the best real DER with the least metadata.\n");
  return 0;
}
