#include "mhd/container/bloom_filter.h"

#include <gtest/gtest.h>

#include "mhd/util/random.h"

namespace mhd {
namespace {

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter bf(64 * 1024);
  Xoshiro256 rng(1);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 10000; ++i) keys.push_back(rng());
  for (auto k : keys) bf.insert(k);
  for (auto k : keys) EXPECT_TRUE(bf.maybe_contains(k));
}

TEST(BloomFilter, FalsePositiveRateReasonable) {
  BloomFilter bf = BloomFilter::for_items(10000, 0.01);
  Xoshiro256 rng(2);
  for (int i = 0; i < 10000; ++i) bf.insert(rng());
  // Fresh keys from a different seed; count false positives.
  Xoshiro256 probe(3);
  int fp = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) fp += bf.maybe_contains(probe());
  EXPECT_LT(static_cast<double>(fp) / probes, 0.05);
}

TEST(BloomFilter, EmptyContainsNothing) {
  BloomFilter bf(1024);
  Xoshiro256 rng(4);
  int hits = 0;
  for (int i = 0; i < 1000; ++i) hits += bf.maybe_contains(rng());
  EXPECT_EQ(hits, 0);
}

TEST(BloomFilter, ClearResets) {
  BloomFilter bf(1024);
  bf.insert(42);
  ASSERT_TRUE(bf.maybe_contains(42));
  bf.clear();
  EXPECT_FALSE(bf.maybe_contains(42));
  EXPECT_EQ(bf.inserted_count(), 0u);
}

TEST(BloomFilter, TracksInsertedCount) {
  BloomFilter bf(1024);
  for (int i = 0; i < 5; ++i) bf.insert(i);
  EXPECT_EQ(bf.inserted_count(), 5u);
}

TEST(BloomFilter, EstimatedFpRateGrowsWithLoad) {
  BloomFilter bf(128);
  const double empty_rate = bf.estimated_fp_rate();
  for (int i = 0; i < 500; ++i) bf.insert(i);
  EXPECT_GT(bf.estimated_fp_rate(), empty_rate);
  EXPECT_LE(bf.estimated_fp_rate(), 1.0);
}

TEST(BloomFilter, ForItemsSizing) {
  const auto bf = BloomFilter::for_items(1000000, 0.01);
  // ~9.6 bits/key at 1% -> ~1.2 MB.
  EXPECT_GT(bf.size_bytes(), 1000000u);
  EXPECT_LT(bf.size_bytes(), 2500000u);
}

TEST(BloomFilter, RejectsNonPositiveK) {
  EXPECT_THROW(BloomFilter(1024, 0), std::invalid_argument);
}

}  // namespace
}  // namespace mhd
