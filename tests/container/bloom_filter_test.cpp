#include "mhd/container/bloom_filter.h"

#include <gtest/gtest.h>

#include "mhd/util/random.h"

namespace mhd {
namespace {

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter bf(64 * 1024);
  Xoshiro256 rng(1);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 10000; ++i) keys.push_back(rng());
  for (auto k : keys) bf.insert(k);
  for (auto k : keys) EXPECT_TRUE(bf.maybe_contains(k));
}

TEST(BloomFilter, FalsePositiveRateReasonable) {
  BloomFilter bf = BloomFilter::for_items(10000, 0.01);
  Xoshiro256 rng(2);
  for (int i = 0; i < 10000; ++i) bf.insert(rng());
  // Fresh keys from a different seed; count false positives.
  Xoshiro256 probe(3);
  int fp = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) fp += bf.maybe_contains(probe());
  EXPECT_LT(static_cast<double>(fp) / probes, 0.05);
}

TEST(BloomFilter, EmptyContainsNothing) {
  BloomFilter bf(1024);
  Xoshiro256 rng(4);
  int hits = 0;
  for (int i = 0; i < 1000; ++i) hits += bf.maybe_contains(rng());
  EXPECT_EQ(hits, 0);
}

TEST(BloomFilter, ClearResets) {
  BloomFilter bf(1024);
  bf.insert(42);
  ASSERT_TRUE(bf.maybe_contains(42));
  bf.clear();
  EXPECT_FALSE(bf.maybe_contains(42));
  EXPECT_EQ(bf.inserted_count(), 0u);
}

TEST(BloomFilter, TracksInsertedCount) {
  BloomFilter bf(1024);
  for (int i = 0; i < 5; ++i) bf.insert(i);
  EXPECT_EQ(bf.inserted_count(), 5u);
}

TEST(BloomFilter, EstimatedFpRateGrowsWithLoad) {
  BloomFilter bf(128);
  const double empty_rate = bf.estimated_fp_rate();
  for (int i = 0; i < 500; ++i) bf.insert(i);
  EXPECT_GT(bf.estimated_fp_rate(), empty_rate);
  EXPECT_LE(bf.estimated_fp_rate(), 1.0);
}

TEST(BloomFilter, ForItemsSizing) {
  const auto bf = BloomFilter::for_items(1000000, 0.01);
  // ~9.6 bits/key at 1% -> ~1.2 MB.
  EXPECT_GT(bf.size_bytes(), 1000000u);
  EXPECT_LT(bf.size_bytes(), 2500000u);
}

TEST(BloomFilter, RejectsNonPositiveK) {
  EXPECT_THROW(BloomFilter(1024, 0), std::invalid_argument);
}

TEST(BloomFilter, SerializeRoundTripsExactly) {
  BloomFilter bf(4096, 7);
  Xoshiro256 rng(5);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 2000; ++i) keys.push_back(rng());
  for (auto k : keys) bf.insert(k);

  const ByteVec snap = bf.serialize();
  const auto back = BloomFilter::deserialize(snap);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->size_bytes(), bf.size_bytes());
  EXPECT_EQ(back->probes(), bf.probes());
  EXPECT_EQ(back->inserted_count(), bf.inserted_count());
  // Bit-identical behavior, not just "no false negatives": every probe —
  // member or not — must answer the same as the original.
  for (auto k : keys) EXPECT_TRUE(back->maybe_contains(k));
  Xoshiro256 probe(6);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t k = probe();
    EXPECT_EQ(back->maybe_contains(k), bf.maybe_contains(k)) << k;
  }
}

TEST(BloomFilter, SerializeRoundTripsEmptyFilter) {
  const BloomFilter bf(1024);
  const auto back = BloomFilter::deserialize(bf.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->inserted_count(), 0u);
  EXPECT_FALSE(back->maybe_contains(42));
}

TEST(BloomFilter, DeserializeRejectsEveryBitFlip) {
  // A bloom snapshot with even one wrong bit can produce false negatives,
  // which silently disables dedup — so any damage must be detected.
  BloomFilter bf(256, 3);
  for (int i = 0; i < 100; ++i) bf.insert(i * 2654435761u);
  const ByteVec good = bf.serialize();
  ASSERT_TRUE(BloomFilter::deserialize(good).has_value());
  for (std::size_t byte = 0; byte < good.size(); ++byte) {
    ByteVec bad = good;
    bad[byte] ^= 0x10;
    EXPECT_FALSE(BloomFilter::deserialize(bad).has_value())
        << "flip in byte " << byte << " was not rejected";
  }
}

TEST(BloomFilter, DeserializeRejectsTruncation) {
  const ByteVec good = BloomFilter(1024, 4).serialize();
  for (const std::size_t keep : {std::size_t{0}, std::size_t{3},
                                 good.size() / 2, good.size() - 1}) {
    const ByteVec cut(good.begin(), good.begin() + keep);
    EXPECT_FALSE(BloomFilter::deserialize(cut).has_value()) << keep;
  }
  ByteVec padded = good;
  padded.push_back(Byte{0});
  EXPECT_FALSE(BloomFilter::deserialize(padded).has_value());
}

}  // namespace
}  // namespace mhd
