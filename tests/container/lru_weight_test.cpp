// Tests for the byte-weighted (RAM-budgeted) LRU eviction mode.
#include <gtest/gtest.h>

#include <string>

#include "mhd/container/lru_cache.h"

namespace mhd {
namespace {

LruCache<int, std::string> budgeted(std::uint64_t max_weight,
                                    LruCache<int, std::string>::EvictFn fn =
                                        nullptr) {
  return LruCache<int, std::string>(
      1000, std::move(fn), max_weight,
      [](const std::string& v) { return static_cast<std::uint64_t>(v.size()); });
}

TEST(LruWeight, EvictsWhenOverBudget) {
  auto cache = budgeted(10);
  cache.put(1, "aaaa");   // 4
  cache.put(2, "bbbb");   // 8
  cache.put(3, "cccc");   // 12 -> evict 1
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.peek(1), nullptr);
  EXPECT_EQ(cache.total_weight(), 8u);
}

TEST(LruWeight, SingleOversizedEntrySurvives) {
  auto cache = budgeted(4);
  cache.put(1, "way-too-big-value");
  EXPECT_EQ(cache.size(), 1u);  // MRU always kept usable
  cache.put(2, "x");
  EXPECT_EQ(cache.peek(1), nullptr);  // but evicted by the next insert
}

TEST(LruWeight, ReplaceAdjustsWeight) {
  auto cache = budgeted(10);
  cache.put(1, "aaaaaa");  // 6
  cache.put(1, "aa");      // 2
  EXPECT_EQ(cache.total_weight(), 2u);
  cache.put(2, "bbbbbbbb");  // 10 total, fits
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruWeight, EraseReleasesWeight) {
  auto cache = budgeted(10);
  cache.put(1, "aaaa");
  cache.erase(1);
  EXPECT_EQ(cache.total_weight(), 0u);
}

TEST(LruWeight, EvictionCallbackFiresOnBudgetEviction) {
  int evicted = 0;
  auto cache = budgeted(6, [&](const int&, std::string&) { ++evicted; });
  cache.put(1, "aaaa");
  cache.put(2, "bbbb");  // evicts 1
  EXPECT_EQ(evicted, 1);
}

TEST(LruWeight, UnweightedCacheIgnoresBudget) {
  LruCache<int, std::string> cache(2);  // count-limited only
  cache.put(1, std::string(1000, 'x'));
  cache.put(2, std::string(1000, 'y'));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.total_weight(), 0u);
}

}  // namespace
}  // namespace mhd
