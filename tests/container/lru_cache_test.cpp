#include "mhd/container/lru_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace mhd {
namespace {

TEST(LruCache, PutGetRoundTrip) {
  LruCache<int, std::string> cache(4);
  cache.put(1, "one");
  cache.put(2, "two");
  ASSERT_NE(cache.get(1), nullptr);
  EXPECT_EQ(*cache.get(1), "one");
  EXPECT_EQ(cache.get(3), nullptr);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache<int, int> cache(2);
  cache.put(1, 10);
  cache.put(2, 20);
  cache.get(1);      // 2 is now LRU
  cache.put(3, 30);  // evicts 2
  EXPECT_NE(cache.get(1), nullptr);
  EXPECT_EQ(cache.get(2), nullptr);
  EXPECT_NE(cache.get(3), nullptr);
  EXPECT_EQ(cache.eviction_count(), 1u);
}

TEST(LruCache, EvictionCallbackSeesDirtyValue) {
  std::vector<std::pair<int, int>> evicted;
  LruCache<int, int> cache(1, [&](const int& k, int& v) {
    evicted.emplace_back(k, v);
  });
  cache.put(1, 100);
  cache.put(2, 200);  // evicts (1,100)
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], std::make_pair(1, 100));
}

TEST(LruCache, PutExistingKeyUpdatesAndTouches) {
  LruCache<int, int> cache(2);
  cache.put(1, 10);
  cache.put(2, 20);
  cache.put(1, 11);  // update; 2 becomes LRU
  cache.put(3, 30);  // evicts 2
  ASSERT_NE(cache.peek(1), nullptr);
  EXPECT_EQ(*cache.peek(1), 11);
  EXPECT_EQ(cache.peek(2), nullptr);
}

TEST(LruCache, PeekDoesNotTouch) {
  LruCache<int, int> cache(2);
  cache.put(1, 10);
  cache.put(2, 20);
  cache.peek(1);     // recency unchanged; 1 is still LRU
  cache.put(3, 30);  // evicts 1
  EXPECT_EQ(cache.peek(1), nullptr);
  EXPECT_NE(cache.peek(2), nullptr);
}

TEST(LruCache, EraseSkipsCallback) {
  int callbacks = 0;
  LruCache<int, int> cache(2, [&](const int&, int&) { ++callbacks; });
  cache.put(1, 10);
  EXPECT_TRUE(cache.erase(1));
  EXPECT_FALSE(cache.erase(1));
  EXPECT_EQ(callbacks, 0);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCache, FlushEvictsAllWithCallback) {
  int callbacks = 0;
  LruCache<int, int> cache(8, [&](const int&, int&) { ++callbacks; });
  for (int i = 0; i < 5; ++i) cache.put(i, i);
  cache.flush();
  EXPECT_EQ(callbacks, 5);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCache, ForEachMostRecentFirst) {
  LruCache<int, int> cache(4);
  cache.put(1, 1);
  cache.put(2, 2);
  cache.put(3, 3);
  cache.get(1);
  std::vector<int> order;
  cache.for_each([&](const int& k, int&) { order.push_back(k); });
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(LruCache, RejectsZeroCapacity) {
  EXPECT_THROW((LruCache<int, int>(0)), std::invalid_argument);
}

}  // namespace
}  // namespace mhd
