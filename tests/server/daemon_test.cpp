// DedupDaemon end-to-end: N parallel disjoint-tenant ingests bit-identical
// to serial runs, concurrent restore storms, admission control (Busy +
// retry-after), per-tenant quotas, online maintenance between sessions,
// tenant validation at the server boundary, and stats observability.
//
// Every test drives a real daemon over a loopback socket (tcp:0) through
// DedupClient — the same path the CLI subcommands use.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "mhd/chunk/byte_source.h"
#include "mhd/core/mhd_engine.h"
#include "mhd/server/client.h"
#include "mhd/server/daemon.h"
#include "mhd/server/tenant_view.h"
#include "mhd/store/framed_backend.h"
#include "mhd/store/maintenance.h"
#include "mhd/store/memory_backend.h"
#include "mhd/store/object_store.h"

namespace mhd::server {
namespace {

/// Deterministic pseudo-random blob (xorshift64*), seeded per tenant.
ByteVec make_blob(std::uint64_t seed, std::size_t n) {
  ByteVec v(n);
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ull + 0x2545F4914F6CDD1Dull;
  for (auto& b : v) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<Byte>(x >> 32);
  }
  return v;
}

/// The two files one tenant ingests: disk1 shares its first half with
/// disk0, so the second PUT exercises the dedup path (hooks + manifests
/// written by the first).
std::vector<std::pair<std::string, ByteVec>> tenant_files(std::uint64_t t) {
  const ByteVec base = make_blob(t + 1, 96 << 10);
  ByteVec second(base.begin(), base.begin() + (48 << 10));
  const ByteVec fresh = make_blob(t + 101, 48 << 10);
  second.insert(second.end(), fresh.begin(), fresh.end());
  return {{"disk0.img", base}, {"disk1.img", std::move(second)}};
}

/// One daemon PUT replayed serially: fresh per-PUT engine over a
/// per-tenant view, torn down with finish(). The warm-session daemon must
/// be bit-indistinguishable from this on every stored object.
void serial_put(StorageBackend& repo, const std::string& tenant,
                const std::string& name, const ByteVec& data,
                const EngineConfig& cfg) {
  TenantView view(repo, tenant);
  ObjectStore store(view);
  MhdEngine engine(store, cfg);
  MemorySource src(ByteSpan{data});
  engine.add_file(name, src);
  engine.end_snapshot();
  engine.finish();
}

/// What the daemon does per PUT, replayed serially: per-tenant view,
/// per-PUT engine. Bit-level reference for the parallel runs.
void serial_ingest(StorageBackend& repo, const std::string& tenant,
                   const EngineConfig& cfg) {
  for (const auto& [name, data] : tenant_files(std::stoull(tenant.substr(1)))) {
    serial_put(repo, tenant, name, data, cfg);
  }
}

void expect_backends_identical(StorageBackend& a, StorageBackend& b) {
  for (int n = 0; n < static_cast<int>(Ns::kCount); ++n) {
    const Ns ns = static_cast<Ns>(n);
    auto la = a.list(ns), lb = b.list(ns);
    std::sort(la.begin(), la.end());
    std::sort(lb.begin(), lb.end());
    ASSERT_EQ(la, lb) << "namespace " << n;
    for (const auto& name : la) {
      ASSERT_EQ(a.get(ns, name), b.get(ns, name))
          << "namespace " << n << " object " << name;
    }
  }
}

ByteVec client_get(const std::string& spec, const std::string& tenant,
                   const std::string& name) {
  // Session slots release asynchronously after a peer closes, so a fresh
  // connection can race into Busy — honour the protocol's back-off-and-
  // retry contract instead of asserting on scheduler timing.
  for (int attempt = 0; attempt < 200; ++attempt) {
    auto client = DedupClient::connect(spec);
    EXPECT_TRUE(client);
    if (!client) break;
    ByteVec out;
    const auto r = client->get(tenant, name,
                               [&](ByteSpan chunk) { append(out, chunk); });
    if (r.busy) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      continue;
    }
    EXPECT_TRUE(r.ok) << r.message;
    EXPECT_TRUE(r.stream_ok);
    EXPECT_EQ(r.produced, out.size());
    return out;
  }
  ADD_FAILURE() << "get " << tenant << "/" << name << " never admitted";
  return {};
}

TEST(DaemonTest, EightParallelTenantsBitIdenticalToSerial) {
  constexpr int kTenants = 8;
  DaemonConfig dc;
  dc.listen = "tcp:0";
  dc.max_sessions = kTenants;

  MemoryBackend repo;
  DedupDaemon daemon(repo, repo, dc);
  daemon.start();
  const std::string spec = daemon.listen_spec();

  std::vector<std::thread> sessions;
  std::atomic<int> failures{0};
  for (int t = 0; t < kTenants; ++t) {
    sessions.emplace_back([&, t] {
      auto client = DedupClient::connect(spec);
      if (!client) {
        ++failures;
        return;
      }
      for (const auto& [name, data] : tenant_files(t)) {
        const auto r = client->put_bytes("t" + std::to_string(t), name,
                                         ByteSpan{data});
        if (!r.ok) ++failures;
      }
    });
  }
  for (auto& s : sessions) s.join();
  ASSERT_EQ(failures.load(), 0);

  // Every tenant restores byte-exactly through the live daemon.
  for (int t = 0; t < kTenants; ++t) {
    for (const auto& [name, data] : tenant_files(t)) {
      EXPECT_EQ(client_get(spec, "t" + std::to_string(t), name), data)
          << "tenant " << t << " file " << name;
    }
  }

  const std::string stats = daemon.stats_json();
  EXPECT_NE(stats.find("\"t0\""), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"t7\""), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"puts\":2"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"dup_bytes\""), std::string::npos) << stats;
  daemon.stop();  // joins every session thread; counters are final now
  EXPECT_GE(daemon.sessions_served(), static_cast<std::uint64_t>(kTenants));

  // Serial reference: same per-PUT engine construction, one tenant after
  // another on a fresh repository. Disjoint namespaces make "parallel ==
  // serial" a bit-level equality over every stored object.
  MemoryBackend reference;
  for (int t = 0; t < kTenants; ++t) {
    serial_ingest(reference, "t" + std::to_string(t), dc.engine);
  }
  expect_backends_identical(repo, reference);
}

TEST(DaemonTest, DiskIndexTenantsBitIdenticalToSerial) {
  DaemonConfig dc;
  dc.listen = "tcp:0";
  dc.max_sessions = 4;
  // Per-tenant persistent index with geometry small enough to exercise
  // journal sealing and compaction during the test.
  dc.engine.index_impl = IndexImpl::kDisk;
  dc.engine.index_shards = 4;
  dc.engine.index_journal_batch = 8;
  dc.engine.index_compact_threshold = 16;

  MemoryBackend repo;
  DedupDaemon daemon(repo, repo, dc);
  daemon.start();
  const std::string spec = daemon.listen_spec();

  constexpr int kTenants = 2;
  std::vector<std::thread> sessions;
  std::atomic<int> failures{0};
  for (int t = 0; t < kTenants; ++t) {
    sessions.emplace_back([&, t] {
      auto client = DedupClient::connect(spec);
      if (!client) {
        ++failures;
        return;
      }
      for (const auto& [name, data] : tenant_files(t)) {
        if (!client->put_bytes("t" + std::to_string(t), name, ByteSpan{data})
                 .ok) {
          ++failures;
        }
      }
    });
  }
  for (auto& s : sessions) s.join();
  ASSERT_EQ(failures.load(), 0);
  daemon.stop();

  MemoryBackend reference;
  for (int t = 0; t < kTenants; ++t) {
    serial_ingest(reference, "t" + std::to_string(t), dc.engine);
  }
  // Includes Ns::kIndex: per-tenant meta/shard/journal objects match too.
  expect_backends_identical(repo, reference);
}

/// PUT over a fresh connection with the protocol's back-off-and-retry on
/// Busy (session slots release asynchronously after a peer closes).
bool client_put_retry(const std::string& spec, const std::string& tenant,
                      const std::string& name, const ByteVec& data) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    auto client = DedupClient::connect(spec);
    if (!client) return false;
    const auto r = client->put_bytes(tenant, name, ByteSpan{data});
    if (r.busy) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      continue;
    }
    return r.ok;
  }
  return false;
}

/// Maintain(gc) over a fresh connection, retrying Busy.
DedupClient::Result maintain_gc_retry(const std::string& spec) {
  DedupClient::Result r;
  for (int attempt = 0; attempt < 200; ++attempt) {
    auto client = DedupClient::connect(spec);
    if (!client) {
      r.message = "connect failed";
      return r;
    }
    r = client->maintain(MaintainOp::kGc);
    if (!r.busy) return r;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return r;
}

/// The serial reference for the interleaved tests: per tenant a fresh
/// engine for the first file, gc through the tenant view (what the
/// daemon's Maintain(gc) runs), then a fresh engine for the second file.
void serial_interleaved_reference(StorageBackend& reference, int tenants,
                                  const EngineConfig& cfg) {
  for (int t = 0; t < tenants; ++t) {
    const auto files = tenant_files(t);
    serial_put(reference, "t" + std::to_string(t), files[0].first,
               files[0].second, cfg);
  }
  for (int t = 0; t < tenants; ++t) {
    TenantView view(reference, "t" + std::to_string(t));
    collect_garbage(view);
  }
  for (int t = 0; t < tenants; ++t) {
    const auto files = tenant_files(t);
    serial_put(reference, "t" + std::to_string(t), files[1].first,
               files[1].second, cfg);
  }
}

/// Warm engine sessions across an interleaved PUT → maintain(gc) → PUT
/// schedule. The first round builds the per-tenant warm engines, the
/// maintenance gate drops them all (gc rewrites hooks/manifests/index
/// beneath them), and the second round rebuilds them from post-gc disk
/// state — all of which must be bit-identical to the fresh-engine serial
/// baseline running the same schedule.
TEST(DaemonTest, WarmSessionsInterleavedWithGcBitIdenticalToSerial) {
  constexpr int kTenants = 8;
  DaemonConfig dc;
  dc.listen = "tcp:0";
  dc.max_sessions = kTenants + 1;  // +1: the maintenance client

  MemoryBackend repo;
  DedupDaemon daemon(repo, repo, dc);
  daemon.start();
  const std::string spec = daemon.listen_spec();

  // Persistent connections: the second round reuses them, so each
  // tenant's PUTs land on one session thread with no re-admission races.
  std::vector<DedupClient> clients;
  clients.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    auto c = DedupClient::connect(spec);
    ASSERT_TRUE(c);
    clients.push_back(std::move(*c));
  }

  std::atomic<int> failures{0};
  const auto put_round = [&](int file_idx) {
    std::vector<std::thread> workers;
    for (int t = 0; t < kTenants; ++t) {
      workers.emplace_back([&, t] {
        const auto files = tenant_files(t);
        const auto& [name, data] = files[file_idx];
        if (!clients[t].put_bytes("t" + std::to_string(t), name,
                                  ByteSpan{data})
                 .ok) {
          ++failures;
        }
      });
    }
    for (auto& w : workers) w.join();
  };

  put_round(0);
  ASSERT_EQ(failures.load(), 0);
  {
    const auto gc = maintain_gc_retry(spec);
    ASSERT_TRUE(gc.ok) << gc.message;
    // Everything is referenced; gc must delete nothing.
    EXPECT_NE(gc.message.find("\"deleted_chunks\":0"), std::string::npos)
        << gc.message;
  }
  put_round(1);
  ASSERT_EQ(failures.load(), 0);

  for (int t = 0; t < kTenants; ++t) {
    for (const auto& [name, data] : tenant_files(t)) {
      EXPECT_EQ(client_get(spec, "t" + std::to_string(t), name), data)
          << "tenant " << t << " file " << name;
    }
  }
  daemon.stop();

  MemoryBackend reference;
  serial_interleaved_reference(reference, kTenants, dc.engine);
  expect_backends_identical(repo, reference);
}

/// Same interleaved schedule on the persistent (disk) index, with a full
/// daemon restart between the gc and the second PUT round: the restarted
/// daemon's engines warm-load the on-disk index, append to it, and the
/// final repository — including every Ns::kIndex meta/shard/journal/bloom
/// object — must match the serial fresh-engine baseline that never had a
/// warm engine or a restart.
TEST(DaemonTest, DiskIndexInterleavedGcAndRestartBitIdenticalToSerial) {
  constexpr int kTenants = 8;
  DaemonConfig dc;
  dc.listen = "tcp:0";
  dc.max_sessions = kTenants + 1;
  dc.engine.index_impl = IndexImpl::kDisk;
  dc.engine.index_shards = 4;
  dc.engine.index_journal_batch = 8;
  dc.engine.index_compact_threshold = 16;

  MemoryBackend repo;
  std::atomic<int> failures{0};
  const auto put_round = [&](const std::string& spec, int file_idx) {
    std::vector<std::thread> workers;
    for (int t = 0; t < kTenants; ++t) {
      workers.emplace_back([&, t] {
        const auto files = tenant_files(t);
        const auto& [name, data] = files[file_idx];
        if (!client_put_retry(spec, "t" + std::to_string(t), name, data)) {
          ++failures;
        }
      });
    }
    for (auto& w : workers) w.join();
  };

  {
    DedupDaemon daemon(repo, repo, dc);
    daemon.start();
    put_round(daemon.listen_spec(), 0);
    ASSERT_EQ(failures.load(), 0);
    const auto gc = maintain_gc_retry(daemon.listen_spec());
    ASSERT_TRUE(gc.ok) << gc.message;
    daemon.stop();
  }
  {
    // Restart over the same repository: nothing carries over but disk.
    DedupDaemon daemon(repo, repo, dc);
    daemon.start();
    put_round(daemon.listen_spec(), 1);
    ASSERT_EQ(failures.load(), 0);
    for (int t = 0; t < kTenants; ++t) {
      for (const auto& [name, data] : tenant_files(t)) {
        EXPECT_EQ(client_get(daemon.listen_spec(), "t" + std::to_string(t),
                             name),
                  data)
            << "tenant " << t << " file " << name;
      }
    }
    daemon.stop();
  }

  MemoryBackend reference;
  serial_interleaved_reference(reference, kTenants, dc.engine);
  expect_backends_identical(repo, reference);
}

TEST(DaemonTest, ConcurrentRestoreStormIsByteExact) {
  DaemonConfig dc;
  dc.listen = "tcp:0";
  dc.max_sessions = 8;

  MemoryBackend repo;
  DedupDaemon daemon(repo, repo, dc);
  daemon.start();
  const std::string spec = daemon.listen_spec();

  const auto files = tenant_files(3);
  {
    auto client = DedupClient::connect(spec);
    ASSERT_TRUE(client);
    for (const auto& [name, data] : files) {
      ASSERT_TRUE(client->put_bytes("media", name, ByteSpan{data}).ok);
    }
  }

  constexpr int kReaders = 6;
  std::vector<std::thread> readers;
  std::atomic<int> mismatches{0};
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      // All readers hammer both files through the shared backend stack.
      for (const auto& [name, data] : files) {
        if (client_get(spec, "media", name) != data) ++mismatches;
      }
    });
  }
  for (auto& r : readers) r.join();
  EXPECT_EQ(mismatches.load(), 0);

  daemon.stop();  // joins sessions: every get's counter update is visible
  const std::string stats = daemon.stats_json();
  EXPECT_NE(stats.find("\"gets\":" + std::to_string(kReaders * 2)),
            std::string::npos)
      << stats;
}

TEST(DaemonTest, AdmissionControlAnswersBusyWithRetryAfter) {
  DaemonConfig dc;
  dc.listen = "tcp:0";
  dc.max_sessions = 1;
  dc.retry_after_ms = 42;

  MemoryBackend repo;
  DedupDaemon daemon(repo, repo, dc);
  daemon.start();
  const std::string spec = daemon.listen_spec();

  // First connection occupies the single session slot (the ping round
  // trip guarantees the daemon has accepted it).
  auto holder = DedupClient::connect(spec);
  ASSERT_TRUE(holder);
  ASSERT_TRUE(holder->ping().ok);

  auto rejected = DedupClient::connect(spec);
  ASSERT_TRUE(rejected);  // TCP connects; admission happens at accept
  const auto r = rejected->ping();
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.busy);
  EXPECT_EQ(r.retry_after_ms, 42u);
  EXPECT_GE(daemon.busy_rejections(), 1u);

  // Releasing the slot lets a retrying client in (the documented
  // back-off-and-retry contract).
  holder.reset();
  bool admitted = false;
  for (int attempt = 0; attempt < 100 && !admitted; ++attempt) {
    auto retry = DedupClient::connect(spec);
    ASSERT_TRUE(retry);
    if (retry->ping().ok) {
      admitted = true;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(admitted);
  daemon.stop();
}

TEST(DaemonTest, LogicalByteQuotaAbortsMidStream) {
  DaemonConfig dc;
  dc.listen = "tcp:0";
  dc.quota.max_logical_bytes = 32 << 10;

  MemoryBackend repo;
  DedupDaemon daemon(repo, repo, dc);
  daemon.start();
  const std::string spec = daemon.listen_spec();

  const ByteVec big = make_blob(9, 128 << 10);
  {
    auto client = DedupClient::connect(spec);
    ASSERT_TRUE(client);
    const auto r = client->put_bytes("alice", "big.img", ByteSpan{big});
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(r.quota);
    EXPECT_NE(r.message.find("logical byte limit"), std::string::npos)
        << r.message;
  }
  // The aborted PUT charged nothing: a within-quota file still fits.
  const ByteVec small = make_blob(10, 16 << 10);
  {
    auto client = DedupClient::connect(spec);
    ASSERT_TRUE(client);
    EXPECT_TRUE(client->put_bytes("alice", "small.img", ByteSpan{small}).ok);
  }
  EXPECT_NE(daemon.stats_json().find("\"quota_rejections\":1"),
            std::string::npos)
      << daemon.stats_json();
  daemon.stop();
}

TEST(DaemonTest, FileCountQuotaRejectsAtPutBegin) {
  DaemonConfig dc;
  dc.listen = "tcp:0";
  dc.quota.max_files = 2;

  MemoryBackend repo;
  DedupDaemon daemon(repo, repo, dc);
  daemon.start();
  const std::string spec = daemon.listen_spec();

  const ByteVec data = make_blob(4, 8 << 10);
  auto client = DedupClient::connect(spec);
  ASSERT_TRUE(client);
  EXPECT_TRUE(client->put_bytes("bob", "a.img", ByteSpan{data}).ok);
  EXPECT_TRUE(client->put_bytes("bob", "b.img", ByteSpan{data}).ok);
  const auto r = client->put_bytes("bob", "c.img", ByteSpan{data});
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.quota);
  EXPECT_NE(r.message.find("file count limit"), std::string::npos)
      << r.message;
  daemon.stop();
}

TEST(DaemonTest, InvalidTenantIdsAreRejectedAtTheBoundary) {
  DaemonConfig dc;
  dc.listen = "tcp:0";
  MemoryBackend repo;
  DedupDaemon daemon(repo, repo, dc);
  daemon.start();
  const std::string spec = daemon.listen_spec();

  const ByteVec data = make_blob(5, 4 << 10);
  // A PUT with an invalid tenant is refused before any data lands (the
  // daemon also drops the connection — data frames would follow).
  for (const std::string bad : {"a/b", "a.b", "", "a\\b"}) {
    auto client = DedupClient::connect(spec);
    ASSERT_TRUE(client);
    const auto r = client->put_bytes(bad, "x.img", ByteSpan{data});
    EXPECT_FALSE(r.ok) << "tenant '" << bad << "'";
    EXPECT_FALSE(r.busy);
    EXPECT_FALSE(r.quota);
    EXPECT_FALSE(r.message.empty());
  }
  // Nothing reached the store under any name.
  for (int n = 0; n < static_cast<int>(Ns::kCount); ++n) {
    EXPECT_EQ(repo.object_count(static_cast<Ns>(n)), 0u);
  }

  // GETs and LSs validate too, without dropping the connection.
  auto client = DedupClient::connect(spec);
  ASSERT_TRUE(client);
  EXPECT_FALSE(client->get("..", "x.img", [](ByteSpan) {}).ok);
  EXPECT_FALSE(client->ls("a/b").ok);
  EXPECT_TRUE(client->ping().ok);  // connection still usable
  daemon.stop();
}

TEST(DaemonTest, OnlineMaintenanceBetweenSessions) {
  DaemonConfig dc;
  dc.listen = "tcp:0";

  // Framed repo: the integrity pass verifies real frames end to end.
  MemoryBackend raw;
  FramedBackend framed(raw);
  DedupDaemon daemon(framed, raw, dc);
  daemon.start();
  const std::string spec = daemon.listen_spec();

  const auto files = tenant_files(6);
  auto client = DedupClient::connect(spec);
  ASSERT_TRUE(client);
  ASSERT_TRUE(
      client->put_bytes("ops", files[0].first, ByteSpan{files[0].second}).ok);

  // gc against the live daemon: everything is referenced, nothing dies.
  const auto gc = client->maintain(MaintainOp::kGc);
  ASSERT_TRUE(gc.ok) << gc.message;
  EXPECT_NE(gc.message.find("\"deleted_chunks\":0"), std::string::npos)
      << gc.message;
  EXPECT_NE(gc.message.find("\"tenants\":1"), std::string::npos) << gc.message;

  const auto fsck = client->maintain(MaintainOp::kFsck);
  ASSERT_TRUE(fsck.ok) << fsck.message;
  EXPECT_NE(fsck.message.find("\"clean\":true"), std::string::npos)
      << fsck.message;

  // The daemon keeps serving after maintenance: new PUT, byte-exact GETs.
  ASSERT_TRUE(
      client->put_bytes("ops", files[1].first, ByteSpan{files[1].second}).ok);
  for (const auto& [name, data] : files) {
    EXPECT_EQ(client_get(spec, "ops", name), data) << name;
  }

  const auto ls = client->ls("ops");
  ASSERT_TRUE(ls.ok);
  EXPECT_NE(ls.message.find("disk0.img"), std::string::npos) << ls.message;
  EXPECT_NE(ls.message.find("disk1.img"), std::string::npos) << ls.message;
  daemon.stop();
}

TEST(DaemonTest, StatsRpcReportsPerTenantCountersAndLatency) {
  DaemonConfig dc;
  dc.listen = "tcp:0";
  MemoryBackend repo;
  DedupDaemon daemon(repo, repo, dc);
  daemon.start();
  const std::string spec = daemon.listen_spec();

  const ByteVec data = make_blob(11, 64 << 10);
  auto client = DedupClient::connect(spec);
  ASSERT_TRUE(client);
  ASSERT_TRUE(client->put_bytes("alpha", "f.img", ByteSpan{data}).ok);
  ByteVec restored;
  ASSERT_TRUE(
      client->get("alpha", "f.img", [&](ByteSpan c) { append(restored, c); })
          .ok);
  EXPECT_EQ(restored, data);

  const auto stats = client->stats();
  ASSERT_TRUE(stats.ok);
  for (const char* key :
       {"\"alpha\"", "\"puts\":1", "\"gets\":1", "\"logical_bytes\":65536",
        "\"restore_bytes\":65536", "\"put_p50_us\"", "\"put_p99_us\"",
        "\"get_p50_us\"", "\"queue_high_water\"", "\"sessions_served\"",
        "\"busy_rejections\":0", "\"max_sessions\":8"}) {
    EXPECT_NE(stats.message.find(key), std::string::npos)
        << key << " missing in " << stats.message;
  }
  daemon.stop();
}

TEST(DaemonTest, StatsSeparateFailedGetsAndSupportResettingHistograms) {
  DaemonConfig dc;
  dc.listen = "tcp:0";
  MemoryBackend repo;
  DedupDaemon daemon(repo, repo, dc);
  daemon.start();

  const ByteVec data = make_blob(12, 32 << 10);
  auto client = DedupClient::connect(daemon.listen_spec());
  ASSERT_TRUE(client);
  ASSERT_TRUE(client->put_bytes("beta", "f.img", ByteSpan{data}).ok);
  ASSERT_TRUE(client->get("beta", "f.img", [](ByteSpan) {}).ok);
  // A missing file fails fast; it must land in the error histogram, not
  // drag the success percentiles down.
  EXPECT_FALSE(client->get("beta", "missing.img", [](ByteSpan) {}).ok);

  const auto before = client->stats(/*reset=*/true);  // snapshot-and-reset
  ASSERT_TRUE(before.ok);
  for (const char* key : {"\"gets\":1", "\"get_errors\":1", "\"puts\":1",
                          "\"get_err_p99_us\""}) {
    EXPECT_NE(before.message.find(key), std::string::npos)
        << key << " missing in " << before.message;
  }
  // Non-empty histograms quantize to >= 2 µs, so ":0" proves the reset.
  EXPECT_EQ(before.message.find("\"put_p50_us\":0"), std::string::npos)
      << before.message;

  const auto after = client->stats();
  ASSERT_TRUE(after.ok);
  for (const char* key :
       {"\"put_p50_us\":0", "\"put_p99_us\":0", "\"get_p50_us\":0",
        "\"get_err_p99_us\":0",
        // The reset clears latency histograms ONLY; counters are
        // monotonic for the daemon's lifetime.
        "\"gets\":1", "\"get_errors\":1", "\"puts\":1"}) {
    EXPECT_NE(after.message.find(key), std::string::npos)
        << key << " missing in " << after.message;
  }
  daemon.stop();
}

TEST(DaemonTest, StopWhileClientsConnectedShutsDownCleanly) {
  DaemonConfig dc;
  dc.listen = "tcp:0";
  MemoryBackend repo;
  DedupDaemon daemon(repo, repo, dc);
  daemon.start();
  auto idle = DedupClient::connect(daemon.listen_spec());
  ASSERT_TRUE(idle);
  ASSERT_TRUE(idle->ping().ok);
  daemon.stop();  // must unblock the idle session's read and join it
  EXPECT_EQ(daemon.active_sessions(), 0u);
  daemon.stop();  // idempotent
}

}  // namespace
}  // namespace mhd::server
