// TenantView satellites: namespace-prefix isolation between tenants,
// list filtering/stripping, stats accounting through the view, and
// scan_tenant_files recovering file names from FileManifest payloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "mhd/format/file_manifest.h"
#include "mhd/hash/sha1.h"
#include "mhd/server/tenant_view.h"
#include "mhd/store/memory_backend.h"

namespace mhd::server {
namespace {

ByteVec bytes_of(const std::string& s) { return to_vec(as_bytes(s)); }

TEST(TenantView, PrefixesEveryNamespaceAndIsolatesTenants) {
  MemoryBackend mem;
  TenantView alice(mem, "alice");
  TenantView bob(mem, "bob");

  for (int n = 0; n < static_cast<int>(Ns::kCount); ++n) {
    const Ns ns = static_cast<Ns>(n);
    alice.put(ns, "obj", ByteSpan{as_bytes("from-alice")});
    bob.put(ns, "obj", ByteSpan{as_bytes("from-bob")});

    // Same logical name, two physical objects.
    EXPECT_EQ(mem.get(ns, "alice.obj"), bytes_of("from-alice"));
    EXPECT_EQ(mem.get(ns, "bob.obj"), bytes_of("from-bob"));
    EXPECT_EQ(alice.get(ns, "obj"), bytes_of("from-alice"));
    EXPECT_EQ(bob.get(ns, "obj"), bytes_of("from-bob"));
    EXPECT_FALSE(mem.exists(ns, "obj"));
  }
}

TEST(TenantView, ListFiltersAndStripsThePrefix) {
  MemoryBackend mem;
  TenantView alice(mem, "alice");
  TenantView bob(mem, "bob");

  alice.put(Ns::kDiskChunk, "aa", ByteSpan{as_bytes("1")});
  alice.put(Ns::kDiskChunk, "bb", ByteSpan{as_bytes("2")});
  bob.put(Ns::kDiskChunk, "aa", ByteSpan{as_bytes("3")});
  // A tenant id that is a prefix of another must not leak entries.
  TenantView al(mem, "al");
  al.put(Ns::kDiskChunk, "zz", ByteSpan{as_bytes("4")});

  auto names = alice.list(Ns::kDiskChunk);
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"aa", "bb"}));
  EXPECT_EQ(alice.object_count(Ns::kDiskChunk), 2u);
  EXPECT_EQ(al.list(Ns::kDiskChunk), std::vector<std::string>{"zz"});
  EXPECT_EQ(mem.object_count(Ns::kDiskChunk), 4u);
}

TEST(TenantView, MutationsStayInsideTheView) {
  MemoryBackend mem;
  TenantView alice(mem, "alice");
  TenantView bob(mem, "bob");

  alice.put(Ns::kHook, "h", ByteSpan{as_bytes("hook")});
  bob.put(Ns::kHook, "h", ByteSpan{as_bytes("hook")});
  EXPECT_TRUE(alice.exists(Ns::kHook, "h"));

  EXPECT_TRUE(alice.remove(Ns::kHook, "h"));
  EXPECT_FALSE(alice.exists(Ns::kHook, "h"));
  EXPECT_TRUE(bob.exists(Ns::kHook, "h"));  // bob's copy untouched

  alice.append(Ns::kManifest, "m", ByteSpan{as_bytes("ab")});
  alice.append(Ns::kManifest, "m", ByteSpan{as_bytes("cd")});
  EXPECT_EQ(alice.get(Ns::kManifest, "m"), bytes_of("abcd"));
  EXPECT_EQ(alice.get_range(Ns::kManifest, "m", 1, 2), bytes_of("bc"));
  EXPECT_EQ(alice.content_bytes(Ns::kManifest), 4u);
}

TEST(TenantView, ScanTenantFilesRecoversNamesFromManifestPayloads) {
  MemoryBackend mem;
  TenantView alice(mem, "alice");
  TenantView bob(mem, "bob");

  const auto store_file = [](StorageBackend& view, const std::string& name,
                             std::uint64_t bytes) {
    FileManifest fm(name);
    fm.add_range(Sha1::hash(as_bytes(name)), 0, bytes, true);
    // FileManifest objects are named by the hash of the file name — the
    // payload is the only place the name survives.
    view.put(Ns::kFileManifest, Sha1::hash(as_bytes(name)).hex(),
             ByteSpan{fm.serialize()});
  };
  store_file(alice, "vm-b.img", 2048);
  store_file(alice, "vm-a.img", 1024);
  store_file(bob, "other.img", 512);

  const auto files = scan_tenant_files(alice);
  ASSERT_EQ(files.size(), 2u);  // bob's file is invisible
  EXPECT_EQ(files[0].name, "vm-a.img");  // sorted by name
  EXPECT_EQ(files[0].bytes, 1024u);
  EXPECT_EQ(files[1].name, "vm-b.img");
  EXPECT_EQ(files[1].bytes, 2048u);
}

TEST(QuotaExceededErrorTest, MessageNamesTenantAndLimit) {
  const QuotaExceededError err("alice", "logical bytes over 1048576");
  const std::string what = err.what();
  EXPECT_NE(what.find("alice"), std::string::npos);
  EXPECT_NE(what.find("logical bytes"), std::string::npos);
}

}  // namespace
}  // namespace mhd::server
