// Kill-9 crash harness — the daemon's durability story under the most
// hostile stop there is. Every scenario runs a REAL daemon process
// (forked child, loopback/unix socket) and SIGKILLs it at seeded points:
// mid-PUT with the stream torn between frames, and mid-gc during the
// recovery's own cleanup. Recovery is always the same drill a real
// operator would run — fsck --repair the surviving bytes, restart the
// daemon, garbage-collect the crash residue — and the bar is always the
// same two claims:
//
//   1. Committed files restore byte-exactly, and the uncommitted victim
//      of the crash is invisible (never half a file).
//   2. After recovery + re-ingest, the repository is BIT-IDENTICAL to an
//      uninterrupted baseline run — every namespace, index included (gc
//      rebuilds the persistent index from surviving hooks, which is what
//      makes the comparison exact rather than merely equivalent).
//
// TSan constraint: fork() from a multi-threaded process is undefined
// enough that TSan refuses it — so the PARENT (this test) never spawns a
// thread. Every daemon lives in a forked child; the parent drives it
// with the threadless DedupClient and runs fsck inline.
#include <gtest/gtest.h>

#include <csignal>
#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "mhd/server/client.h"
#include "mhd/server/daemon.h"
#include "mhd/store/file_backend.h"
#include "mhd/store/framed_backend.h"
#include "mhd/store/scrub.h"

namespace mhd::server {
namespace {

constexpr const char* kTenant = "t0";

/// Deterministic pseudo-random blob (xorshift64*).
ByteVec make_blob(std::uint64_t seed, std::size_t n) {
  ByteVec v(n);
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ull + 0x2545F4914F6CDD1Dull;
  for (auto& b : v) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<Byte>(x >> 32);
  }
  return v;
}

/// The corpus: f1 shares its first half with f0 (the dedup path is live
/// when the crash lands), f2 is the crash victim.
ByteVec file_f0() { return make_blob(1, 96 << 10); }
ByteVec file_f1() {
  const ByteVec base = file_f0();
  ByteVec v(base.begin(), base.begin() + (48 << 10));
  const ByteVec fresh = make_blob(2, 48 << 10);
  v.insert(v.end(), fresh.begin(), fresh.end());
  return v;
}
ByteVec file_f2() { return make_blob(3, 64 << 10); }

// --- Forked daemon lifecycle ----------------------------------------------

volatile std::sig_atomic_t g_stop = 0;
void on_sigterm(int) { g_stop = 1; }

/// Child body: real FileBackend + framed layer + daemon, exactly the
/// cmd_serve stack. Reports the resolved listen spec through `port_pipe`,
/// then idles until SIGTERM (graceful stop) — or until the parent's
/// SIGKILL, which is the whole point.
[[noreturn]] void run_daemon_child(int port_pipe,
                                   const std::filesystem::path& dir,
                                   const std::string& listen,
                                   const EngineConfig& engine) {
  try {
    // Die with the test runner rather than leaking daemons on a crash.
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    std::signal(SIGTERM, on_sigterm);
    if (listen.rfind("unix:", 0) == 0) {
      std::filesystem::remove(listen.substr(5));  // stale socket from a kill
    }
    FileBackend file(dir);
    FramedBackend framed(file);
    DaemonConfig dc;
    dc.listen = listen;
    dc.max_sessions = 4;
    dc.engine = engine;
    DedupDaemon daemon(framed, file, dc);
    daemon.start();
    const std::string spec = daemon.listen_spec() + "\n";
    if (::write(port_pipe, spec.data(), spec.size()) !=
        static_cast<ssize_t>(spec.size())) {
      ::_exit(2);
    }
    ::close(port_pipe);
    while (!g_stop) ::usleep(2'000);
    daemon.stop();
  } catch (...) {
    ::_exit(3);
  }
  ::_exit(0);
}

struct DaemonProc {
  pid_t pid = -1;
  std::string spec;  ///< resolved listen spec, empty if the child died
};

DaemonProc spawn_daemon(const std::filesystem::path& dir,
                        const EngineConfig& engine,
                        const std::string& listen = "tcp:0") {
  int fds[2];
  if (::pipe(fds) != 0) return {};
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return {};
  }
  if (pid == 0) {
    ::close(fds[0]);
    run_daemon_child(fds[1], dir, listen, engine);
  }
  ::close(fds[1]);
  DaemonProc d;
  d.pid = pid;
  char c;
  while (::read(fds[0], &c, 1) == 1 && c != '\n') d.spec.push_back(c);
  ::close(fds[0]);
  return d;
}

void graceful_stop(DaemonProc& d) {
  ASSERT_GT(d.pid, 0);
  ASSERT_EQ(::kill(d.pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(d.pid, &status, 0), d.pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "daemon child exit status " << status;
  d.pid = -1;
}

void kill_nine(DaemonProc& d) {
  ASSERT_GT(d.pid, 0);
  ASSERT_EQ(::kill(d.pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(d.pid, &status, 0), d.pid);
  EXPECT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);
  d.pid = -1;
}

// --- Parent-side request helpers (all threadless) -------------------------

RetryPolicy chaos_policy() {
  RetryPolicy p;
  p.max_retries = 40;
  p.base_backoff_ms = 2;
  p.max_backoff_ms = 30;
  p.seed = 9;
  return p;
}

void put_file(const std::string& spec, const std::string& name,
              const ByteVec& data) {
  auto client = DedupClient::connect(spec);
  ASSERT_TRUE(client) << "connect " << spec;
  client->set_retry_policy(chaos_policy());
  const auto r = client->put_bytes(kTenant, name, ByteSpan{data});
  ASSERT_TRUE(r.ok) << name << ": " << r.message;
}

void run_gc(const std::string& spec) {
  auto client = DedupClient::connect(spec);
  ASSERT_TRUE(client) << "connect " << spec;
  client->set_retry_policy(chaos_policy());
  const auto r = client->maintain(MaintainOp::kGc);
  ASSERT_TRUE(r.ok) << r.message;
}

void expect_restores_exactly(const std::string& spec, const std::string& name,
                             const ByteVec& expected) {
  auto client = DedupClient::connect(spec);
  ASSERT_TRUE(client) << "connect " << spec;
  client->set_retry_policy(chaos_policy());
  ByteVec out;
  const auto r =
      client->get(kTenant, name, [&](ByteSpan chunk) { append(out, chunk); });
  ASSERT_TRUE(r.ok) << name << ": " << r.message;
  EXPECT_TRUE(r.stream_ok);
  ASSERT_EQ(out.size(), expected.size()) << name;
  EXPECT_TRUE(std::equal(out.begin(), out.end(), expected.begin())) << name;
}

void expect_file_absent(const std::string& spec, const std::string& name) {
  auto client = DedupClient::connect(spec);
  ASSERT_TRUE(client) << "connect " << spec;
  client->set_retry_policy(chaos_policy());
  const auto r = client->get(kTenant, name, nullptr);
  EXPECT_FALSE(r.ok) << "uncommitted " << name
                     << " became visible after the crash";
  EXPECT_EQ(r.produced, 0u);
}

/// Hand-rolls the front of a PUT — PutBegin plus `frames` 16 KiB PutData
/// frames, NO PutEnd — so the daemon is mid-stream inside the engine when
/// the SIGKILL lands. Returns the open fd (the crash tears it down).
int start_partial_put(const std::string& spec, const std::string& name,
                      const ByteVec& data, int frames) {
  const int fd = connect_to(spec);
  EXPECT_GE(fd, 0) << "connect " << spec;
  if (fd < 0) return fd;
  ByteVec begin;
  append_string(begin, kTenant);
  append_string(begin, name);
  write_frame(fd, MsgType::kPutBegin, ByteSpan{begin});
  constexpr std::size_t kFrame = 16u << 10;
  std::size_t off = 0;
  for (int i = 0; i < frames && off < data.size(); ++i) {
    const std::size_t n = std::min(kFrame, data.size() - off);
    write_frame(fd, MsgType::kPutData, ByteSpan{data.data() + off, n});
    off += n;
  }
  return fd;
}

/// Operator recovery drill, step one: repair the raw bytes, then demand a
/// clean bill from a second, read-only pass.
void repair_and_expect_clean(const std::filesystem::path& dir) {
  FileBackend raw(dir);
  fsck_repository(raw, /*repair=*/true);
  const auto report = fsck_repository(raw, /*repair=*/false);
  EXPECT_TRUE(report.clean()) << report.to_string();
}

void expect_backends_identical(StorageBackend& a, StorageBackend& b) {
  for (int n = 0; n < static_cast<int>(Ns::kCount); ++n) {
    const Ns ns = static_cast<Ns>(n);
    auto la = a.list(ns), lb = b.list(ns);
    std::sort(la.begin(), la.end());
    std::sort(lb.begin(), lb.end());
    ASSERT_EQ(la, lb) << "namespace " << n;
    for (const auto& name : la) {
      ASSERT_EQ(a.get(ns, name), b.get(ns, name))
          << "namespace " << n << " object " << name;
    }
  }
}

std::filesystem::path fresh_dir(const std::string& tag) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("chaos_" + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// --- Scenarios ------------------------------------------------------------

/// Engine variants: the in-memory index (crash state = store objects
/// only) and the persistent disk index with geometry small enough that
/// journal appends and compaction are live when the SIGKILL lands.
class DaemonChaosTest : public ::testing::TestWithParam<std::string> {
 protected:
  EngineConfig engine() const {
    EngineConfig cfg;
    if (GetParam() == "disk-index") {
      cfg.index_impl = IndexImpl::kDisk;
      cfg.index_shards = 4;
      cfg.index_journal_batch = 8;
      cfg.index_compact_threshold = 16;
    }
    return cfg;
  }

  /// The uninterrupted reference run. gc after f0+f1 mirrors the victim's
  /// post-crash cleanup point (gc rebuilds the index, so the baseline must
  /// rebuild at the same logical position for bit-identity); the final gc
  /// is the shared normalization both runs end on.
  void build_baseline(const std::filesystem::path& dir) {
    DaemonProc d = spawn_daemon(dir, engine());
    ASSERT_FALSE(d.spec.empty()) << "baseline daemon failed to boot";
    put_file(d.spec, "f0.img", file_f0());
    put_file(d.spec, "f1.img", file_f1());
    run_gc(d.spec);
    put_file(d.spec, "f2.img", file_f2());
    run_gc(d.spec);
    graceful_stop(d);
  }

  /// Recovery drill, steps two..five: restart, prove committed files are
  /// intact and the victim invisible, sweep the residue, re-ingest,
  /// normalize. Leaves the repository stopped.
  void recover_and_reingest(const std::filesystem::path& dir) {
    DaemonProc d = spawn_daemon(dir, engine());
    ASSERT_FALSE(d.spec.empty()) << "daemon failed to restart after repair";
    expect_restores_exactly(d.spec, "f0.img", file_f0());
    expect_restores_exactly(d.spec, "f1.img", file_f1());
    expect_file_absent(d.spec, "f2.img");
    run_gc(d.spec);  // sweep crash residue BEFORE re-ingest: orphaned
                     // partial-PUT objects must not influence dedup
    put_file(d.spec, "f2.img", file_f2());
    run_gc(d.spec);
    graceful_stop(d);
  }
};

TEST_P(DaemonChaosTest, KillNineMidPutThenFsckRepairConvergesToBaseline) {
  const auto baseline = fresh_dir(GetParam() + "_put_base");
  ASSERT_NO_FATAL_FAILURE(build_baseline(baseline));

  // Seeded crash points: before any payload frame, after the first, and
  // deep enough into the stream that chunks have reached the store.
  for (const int frames : {0, 1, 3}) {
    SCOPED_TRACE("SIGKILL after " + std::to_string(frames) +
                 " PutData frames");
    const auto dir =
        fresh_dir(GetParam() + "_put_k" + std::to_string(frames));

    DaemonProc d = spawn_daemon(dir, engine());
    ASSERT_FALSE(d.spec.empty()) << "victim daemon failed to boot";
    put_file(d.spec, "f0.img", file_f0());
    put_file(d.spec, "f1.img", file_f1());
    run_gc(d.spec);
    const int fd = start_partial_put(d.spec, "f2.img", file_f2(), frames);
    ::usleep(30'000);  // let the engine consume mid-stream
    ASSERT_NO_FATAL_FAILURE(kill_nine(d));
    if (fd >= 0) ::close(fd);

    repair_and_expect_clean(dir);
    ASSERT_NO_FATAL_FAILURE(recover_and_reingest(dir));

    FileBackend a(baseline), b(dir);
    expect_backends_identical(a, b);
  }
}

TEST_P(DaemonChaosTest, KillNineMidGcDuringRecoveryStillConverges) {
  const auto baseline = fresh_dir(GetParam() + "_gc_base");
  ASSERT_NO_FATAL_FAILURE(build_baseline(baseline));

  // Compound failure: crash mid-PUT, then crash AGAIN during the recovery
  // gc that is sweeping the first crash's residue (mid chunk sweep or mid
  // index rebuild). Recovery must still converge.
  const auto dir = fresh_dir(GetParam() + "_gc_victim");
  DaemonProc d = spawn_daemon(dir, engine());
  ASSERT_FALSE(d.spec.empty()) << "victim daemon failed to boot";
  put_file(d.spec, "f0.img", file_f0());
  put_file(d.spec, "f1.img", file_f1());
  run_gc(d.spec);
  const int fd = start_partial_put(d.spec, "f2.img", file_f2(), 2);
  ::usleep(30'000);
  ASSERT_NO_FATAL_FAILURE(kill_nine(d));
  if (fd >= 0) ::close(fd);
  repair_and_expect_clean(dir);

  DaemonProc d2 = spawn_daemon(dir, engine());
  ASSERT_FALSE(d2.spec.empty()) << "daemon failed to restart after repair";
  {
    // Fire the gc raw and SIGKILL while it runs — no response awaited.
    const int mfd = connect_to(d2.spec);
    ASSERT_GE(mfd, 0);
    ByteVec req;
    req.push_back(static_cast<Byte>(MaintainOp::kGc));
    write_frame(mfd, MsgType::kMaintain, ByteSpan{req});
    ::usleep(3'000);
    ASSERT_NO_FATAL_FAILURE(kill_nine(d2));
    ::close(mfd);
  }
  repair_and_expect_clean(dir);

  ASSERT_NO_FATAL_FAILURE(recover_and_reingest(dir));
  FileBackend a(baseline), b(dir);
  expect_backends_identical(a, b);
}

TEST_P(DaemonChaosTest, RetryingClientSpansDaemonRestart) {
  // A unix socket keeps the dial target stable across the restart, so one
  // client connection's retry loop can ride over the kill: its first
  // attempt dies on the corpse, reconnects fail while the daemon is down,
  // and a later redial lands on the restarted instance.
  const auto dir = fresh_dir(GetParam() + "_restart");
  const std::string listen =
      "unix:" + (dir / "daemon.sock").string();

  DaemonProc d = spawn_daemon(dir, engine(), listen);
  ASSERT_FALSE(d.spec.empty()) << "daemon failed to boot";
  auto client = DedupClient::connect(d.spec);
  ASSERT_TRUE(client);
  client->set_retry_policy(chaos_policy());
  const ByteVec f0 = file_f0();
  ASSERT_TRUE(client->put_bytes(kTenant, "f0.img", ByteSpan{f0}).ok);

  ASSERT_NO_FATAL_FAILURE(kill_nine(d));
  repair_and_expect_clean(dir);
  DaemonProc d2 = spawn_daemon(dir, engine(), listen);
  ASSERT_FALSE(d2.spec.empty()) << "daemon failed to restart";

  // Same client object, same dead connection: the retry policy must
  // reconnect to the restarted daemon and complete the request.
  ByteVec out;
  const auto r =
      client->get(kTenant, "f0.img", [&](ByteSpan c) { append(out, c); });
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_GE(client->retries(), 1u);
  ASSERT_EQ(out.size(), f0.size());
  EXPECT_TRUE(std::equal(out.begin(), out.end(), f0.begin()));

  graceful_stop(d2);
}

INSTANTIATE_TEST_SUITE_P(Engines, DaemonChaosTest,
                         ::testing::Values("mem-index", "disk-index"),
                         [](const auto& info) {
                           std::string n = info.param;
                           std::replace(n.begin(), n.end(), '-', '_');
                           return n;
                         });

}  // namespace
}  // namespace mhd::server
