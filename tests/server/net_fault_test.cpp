// Network chaos + client resilience: the NetFaultPlan grammar, the
// FaultConn proxy's scripted faults (torn frame, garbage header, reset,
// stall/slowloris, short writes), the daemon's typed failure counters
// (protocol_errors / peer_disconnects / idle_timeout_reaps), the
// retryable-error path (TransientReadError → Retry response instead of
// connection death), and DedupClient's RetryPolicy riding through all of
// it with zero data loss.
//
// Every scenario keys off deterministic frame/op counters — no sleeps as
// synchronization, no timing-dependent assertions beyond the idle-timeout
// reap the slowloris test exists to exercise.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mhd/core/mhd_engine.h"
#include "mhd/server/client.h"
#include "mhd/server/daemon.h"
#include "mhd/server/fault_conn.h"
#include "mhd/server/tenant_view.h"
#include "mhd/store/fault_backend.h"
#include "mhd/store/memory_backend.h"
#include "mhd/store/object_store.h"

namespace mhd::server {
namespace {

ByteVec make_blob(std::uint64_t seed, std::size_t n) {
  ByteVec v(n);
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ull + 0x2545F4914F6CDD1Dull;
  for (auto& b : v) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<Byte>(x >> 32);
  }
  return v;
}

/// Direct (daemon-less) ingest into the repo — pre-populates tenant state
/// below any fault layer so a scripted read-fault window hits exactly the
/// daemon traffic the test sends, not the setup.
void serial_put(StorageBackend& repo, const std::string& tenant,
                const std::string& name, const ByteVec& data) {
  TenantView view(repo, tenant);
  ObjectStore store(view);
  MhdEngine engine(store, EngineConfig{});
  MemorySource src(ByteSpan{data});
  engine.add_file(name, src);
  engine.end_snapshot();
  engine.finish();
}

RetryPolicy test_policy(std::uint32_t retries = 8) {
  RetryPolicy p;
  p.max_retries = retries;
  p.base_backoff_ms = 2;
  p.max_backoff_ms = 50;
  p.seed = 7;
  return p;
}

ByteVec get_with_retry(const std::string& spec, const std::string& tenant,
                       const std::string& name, DedupClient::GetResult* out
                       = nullptr) {
  auto client = DedupClient::connect(spec);
  EXPECT_TRUE(client);
  if (!client) return {};
  client->set_retry_policy(test_policy(50));
  ByteVec bytes;
  const auto r =
      client->get(tenant, name, [&](ByteSpan c) { append(bytes, c); });
  EXPECT_TRUE(r.ok) << r.message;
  if (out) *out = r;
  return bytes;
}

TEST(NetFaultPlanTest, ParsesTheWholeGrammar) {
  const auto plan = NetFaultPlan::parse(
      "torn@3:0.25,stall@2:150,reset@7,garbage@1,short@4,torn@9,"
      "conn@2x3,conn@9,seed:99");
  ASSERT_EQ(plan.atoms.size(), 6u);
  EXPECT_EQ(plan.atoms[0].kind, NetFaultPlan::Kind::kTorn);
  EXPECT_EQ(plan.atoms[0].frame, 3u);
  EXPECT_DOUBLE_EQ(plan.atoms[0].fraction, 0.25);
  EXPECT_EQ(plan.atoms[1].kind, NetFaultPlan::Kind::kStall);
  EXPECT_EQ(plan.atoms[1].stall_ms, 150u);
  EXPECT_EQ(plan.atoms[2].kind, NetFaultPlan::Kind::kReset);
  EXPECT_EQ(plan.atoms[3].kind, NetFaultPlan::Kind::kGarbage);
  EXPECT_EQ(plan.atoms[4].kind, NetFaultPlan::Kind::kShort);
  EXPECT_LT(plan.atoms[5].fraction, 0.0);  // torn@9 draws from the seed
  EXPECT_EQ(plan.seed, 99u);

  // conn@2x3 covers 2..4, conn@9 covers 9; everything else is clean.
  EXPECT_FALSE(plan.applies_to_conn(1));
  EXPECT_TRUE(plan.applies_to_conn(2));
  EXPECT_TRUE(plan.applies_to_conn(4));
  EXPECT_FALSE(plan.applies_to_conn(5));
  EXPECT_TRUE(plan.applies_to_conn(9));

  // No conn atom = every connection.
  EXPECT_TRUE(NetFaultPlan::parse("reset@1").applies_to_conn(12345));
  EXPECT_TRUE(NetFaultPlan::parse("").empty());
}

TEST(NetFaultPlanTest, RejectsMalformedAtoms) {
  EXPECT_THROW(NetFaultPlan::parse("bogus@1"), std::invalid_argument);
  EXPECT_THROW(NetFaultPlan::parse("torn"), std::invalid_argument);
  EXPECT_THROW(NetFaultPlan::parse("torn@0"), std::invalid_argument);
  EXPECT_THROW(NetFaultPlan::parse("torn@2:1.5"), std::invalid_argument);
  EXPECT_THROW(NetFaultPlan::parse("reset@2:9"), std::invalid_argument);
  EXPECT_THROW(NetFaultPlan::parse("conn@0"), std::invalid_argument);
  EXPECT_THROW(NetFaultPlan::parse("seed:x"), std::invalid_argument);
}

// A PUT torn mid-PutData on the first connection: the daemon must record
// a peer disconnect (not a protocol error — the peer was benign), drop
// the half stream without committing anything, and the retrying client's
// second connection (clean) must land the file byte-exactly.
TEST(NetFaultTest, TornPutRetriesToZeroDataLoss) {
  DaemonConfig dc;
  dc.listen = "tcp:0";
  // put_bytes streams PutBegin(1), one 96 KB PutData(2), PutEnd(3).
  dc.net_fault_plan = "torn@2:0.5,conn@1";
  MemoryBackend repo;
  DedupDaemon daemon(repo, repo, dc);
  daemon.start();

  const ByteVec data = make_blob(1, 96 << 10);
  auto client = DedupClient::connect(daemon.listen_spec());
  ASSERT_TRUE(client);
  client->set_retry_policy(test_policy());
  const auto r = client->put_bytes("t0", "disk0.img", ByteSpan{data});
  ASSERT_TRUE(r.ok) << r.message;
  EXPECT_GE(client->retries(), 1u);

  EXPECT_GE(daemon.peer_disconnects(), 1u);
  EXPECT_EQ(daemon.protocol_errors(), 0u);
  const std::string stats = daemon.stats_json();
  EXPECT_NE(stats.find("\"peer_disconnects\":"), std::string::npos);

  EXPECT_EQ(get_with_retry(daemon.listen_spec(), "t0", "disk0.img"), data);
  daemon.stop();
}

// A garbage frame header is a hostile/corrupted peer: typed and counted
// as a protocol error, never a crash, and the connection dies so the
// poisoned stream cannot be misparsed. The retrying client recovers on a
// fresh connection.
TEST(NetFaultTest, GarbageHeaderCountsProtocolErrorAndClientRecovers) {
  DaemonConfig dc;
  dc.listen = "tcp:0";
  dc.net_fault_plan = "garbage@1,conn@1";
  MemoryBackend repo;
  DedupDaemon daemon(repo, repo, dc);
  daemon.start();

  auto client = DedupClient::connect(daemon.listen_spec());
  ASSERT_TRUE(client);
  client->set_retry_policy(test_policy());
  const auto r = client->ping();
  ASSERT_TRUE(r.ok) << r.message;
  EXPECT_GE(client->retries(), 1u);
  EXPECT_GE(daemon.protocol_errors(), 1u);
  EXPECT_EQ(daemon.peer_disconnects(), 0u);
  daemon.stop();
}

// A reset between requests looks like a client that simply went away at a
// frame boundary — the daemon must treat it as a clean close (no failure
// counters), while the client's next request on the dead connection
// surfaces as a transport error and retries through.
TEST(NetFaultTest, ResetBetweenRequestsIsBenignForTheDaemon) {
  DaemonConfig dc;
  dc.listen = "tcp:0";
  dc.net_fault_plan = "reset@2,conn@1";
  MemoryBackend repo;
  DedupDaemon daemon(repo, repo, dc);
  daemon.start();

  auto client = DedupClient::connect(daemon.listen_spec());
  ASSERT_TRUE(client);
  client->set_retry_policy(test_policy());
  ASSERT_TRUE(client->ping().ok);   // frame 1 passes clean
  const auto r = client->ping();    // frame 2 never arrives
  ASSERT_TRUE(r.ok) << r.message;
  EXPECT_GE(client->retries(), 1u);
  EXPECT_EQ(daemon.protocol_errors(), 0u);
  daemon.stop();
}

// Short writes (one byte per send) must be semantically invisible — the
// FrameReader's buffered reads reassemble the dribble.
TEST(NetFaultTest, ShortWritesAreSemanticallyInvisible) {
  DaemonConfig dc;
  dc.listen = "tcp:0";
  dc.net_fault_plan = "short@1,short@2,short@3";
  MemoryBackend repo;
  DedupDaemon daemon(repo, repo, dc);
  daemon.start();

  const ByteVec data = make_blob(2, 16 << 10);
  auto client = DedupClient::connect(daemon.listen_spec());
  ASSERT_TRUE(client);
  const auto r = client->put_bytes("t0", "disk0.img", ByteSpan{data});
  ASSERT_TRUE(r.ok) << r.message;
  EXPECT_EQ(client->retries(), 0u);
  EXPECT_EQ(daemon.protocol_errors(), 0u);
  EXPECT_EQ(get_with_retry(daemon.listen_spec(), "t0", "disk0.img"), data);
  daemon.stop();
}

// Slowloris: a connection that stalls mid-frame is reaped by the receive
// timeout, the reap is counted (globally and for the tenant whose PUT
// was in flight), the admission slot frees up (max_sessions = 1 — the
// retrying client itself could not reconnect otherwise), and the tenant
// stays writable afterwards.
TEST(NetFaultTest, SlowlorisReapedByIdleTimeoutFreesItsSlot) {
  DaemonConfig dc;
  dc.listen = "tcp:0";
  dc.max_sessions = 1;
  dc.idle_timeout_ms = 200;
  dc.net_fault_plan = "stall@2,conn@1";  // hold frame 2 forever
  MemoryBackend repo;
  DedupDaemon daemon(repo, repo, dc);
  daemon.start();

  const ByteVec data = make_blob(3, 64 << 10);
  auto client = DedupClient::connect(daemon.listen_spec());
  ASSERT_TRUE(client);
  client->set_retry_policy(test_policy(30));
  const auto r = client->put_bytes("t0", "disk0.img", ByteSpan{data});
  ASSERT_TRUE(r.ok) << r.message;
  EXPECT_GE(client->retries(), 1u);
  EXPECT_EQ(daemon.idle_timeout_reaps(), 1u);

  // Tenant still writable on a fresh, unfaulted connection.
  auto second = DedupClient::connect(daemon.listen_spec());
  ASSERT_TRUE(second);
  second->set_retry_policy(test_policy(30));
  const ByteVec more = make_blob(4, 32 << 10);
  ASSERT_TRUE(second->put_bytes("t0", "disk1.img", ByteSpan{more}).ok);

  EXPECT_EQ(get_with_retry(daemon.listen_spec(), "t0", "disk0.img"), data);
  EXPECT_EQ(get_with_retry(daemon.listen_spec(), "t0", "disk1.img"), more);

  const std::string stats = daemon.stats_json();
  EXPECT_NE(stats.find("\"idle_timeout_reaps\":1"), std::string::npos);
  daemon.stop();
}

// Store-side transient faults below the daemon. ObjectStore/RestoreReader
// retry a failing read 4 times, so a readerr window of 8 exhausts exactly
// two requests: each must come back as a Retry response (session dropped,
// connection alive), and the third client attempt — reads past the
// window — must succeed. Zero data loss, nonzero typed counters.
TEST(NetFaultTest, TransientStoreExhaustionAnswersRetryOnGet) {
  MemoryBackend repo;
  serial_put(repo, "t0", "disk0.img", make_blob(5, 96 << 10));

  FaultInjectingBackend faulty(repo, FaultPlan::parse("readerr@1x8"));
  DaemonConfig dc;
  dc.listen = "tcp:0";
  dc.retry_after_ms = 5;
  DedupDaemon daemon(faulty, repo, dc);
  daemon.start();

  auto client = DedupClient::connect(daemon.listen_spec());
  ASSERT_TRUE(client);
  client->set_retry_policy(test_policy());
  ByteVec restored;
  const auto r = client->get("t0", "disk0.img",
                             [&](ByteSpan c) { append(restored, c); });
  ASSERT_TRUE(r.ok) << r.message;
  EXPECT_EQ(restored, make_blob(5, 96 << 10));
  EXPECT_EQ(client->retries(), 2u);
  EXPECT_EQ(daemon.retryable_errors(), 2u);

  const std::string stats = daemon.stats_json();
  EXPECT_NE(stats.find("\"retryable_errors\":2"), std::string::npos);
  daemon.stop();
}

// Same exhaustion during a PUT (the engine's dedup lookups read hooks and
// manifests of the pre-populated tenant): the daemon drains the rest of
// the stream, answers Retry, rebuilds the tenant session, and the re-sent
// PUT commits. The file must restore byte-exactly afterwards.
TEST(NetFaultTest, TransientStoreExhaustionAnswersRetryOnPut) {
  MemoryBackend repo;
  const ByteVec base = make_blob(6, 96 << 10);
  serial_put(repo, "t0", "disk0.img", base);

  // disk1 shares its first half with disk0 so ingest walks the dedup
  // read path (hook hits → manifest loads) against the faulty store.
  ByteVec second(base.begin(), base.begin() + (48 << 10));
  const ByteVec fresh = make_blob(7, 48 << 10);
  second.insert(second.end(), fresh.begin(), fresh.end());

  FaultInjectingBackend faulty(repo, FaultPlan::parse("readerr@1x8"));
  DaemonConfig dc;
  dc.listen = "tcp:0";
  dc.retry_after_ms = 5;
  DedupDaemon daemon(faulty, repo, dc);
  daemon.start();

  auto client = DedupClient::connect(daemon.listen_spec());
  ASSERT_TRUE(client);
  client->set_retry_policy(test_policy());
  const auto r = client->put_bytes("t0", "disk1.img", ByteSpan{second});
  ASSERT_TRUE(r.ok) << r.message;
  EXPECT_GE(client->retries(), 1u);
  EXPECT_GE(daemon.retryable_errors(), 1u);

  EXPECT_EQ(get_with_retry(daemon.listen_spec(), "t0", "disk1.img"),
            second);
  EXPECT_EQ(get_with_retry(daemon.listen_spec(), "t0", "disk0.img"), base);
  daemon.stop();
}

// Transient faults ABSORBED by the store's bounded retry (window smaller
// than the attempt budget) must not fail anything — but they must be
// visible: the flake surfaces in the transient_retries counters.
TEST(NetFaultTest, AbsorbedTransientRetriesAreCounted) {
  MemoryBackend repo;
  const ByteVec data = make_blob(8, 96 << 10);
  serial_put(repo, "t0", "disk0.img", data);

  // Read 1 is the manifest load; the window faults chunk reads 2..3,
  // which RestoreReader absorbs (and counts) inside the stream.
  FaultInjectingBackend faulty(repo, FaultPlan::parse("readerr@2x2"));
  DaemonConfig dc;
  dc.listen = "tcp:0";
  DedupDaemon daemon(faulty, repo, dc);
  daemon.start();

  auto client = DedupClient::connect(daemon.listen_spec());
  ASSERT_TRUE(client);
  client->set_retry_policy(test_policy());
  ByteVec restored;
  const auto r = client->get("t0", "disk0.img",
                             [&](ByteSpan c) { append(restored, c); });
  ASSERT_TRUE(r.ok) << r.message;
  EXPECT_EQ(restored, data);
  EXPECT_EQ(daemon.retryable_errors(), 0u);

  // Stats over the SAME connection: strict request/response means the
  // GET's counter updates are ordered before this snapshot (a direct
  // daemon.stats_json() call could race the handler's bookkeeping).
  const auto stats = client->stats();
  ASSERT_TRUE(stats.ok);
  EXPECT_NE(stats.message.find("\"transient_retries\":2"),
            std::string::npos)
      << stats.message;
  daemon.stop();
}

}  // namespace
}  // namespace mhd::server
