// Wire-protocol satellites: tenant-id validation at the boundary, string
// and frame codecs, Listener/connect_to round trips over tcp:0 and unix
// sockets, and the oversized-frame allocation bound.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>

#include "mhd/server/protocol.h"

namespace mhd::server {
namespace {

TEST(ValidateTenant, AcceptsPrefixSafeIds) {
  EXPECT_FALSE(validate_tenant("alice"));
  EXPECT_FALSE(validate_tenant("tenant-7"));
  EXPECT_FALSE(validate_tenant("A_b-C_0"));
  EXPECT_FALSE(validate_tenant("0"));
  EXPECT_FALSE(validate_tenant(std::string(64, 'x')));
}

TEST(ValidateTenant, RejectsEmptyAndOverlong) {
  EXPECT_TRUE(validate_tenant(""));
  EXPECT_TRUE(validate_tenant(std::string(65, 'x')));
}

TEST(ValidateTenant, RejectsNameSeparatorsAndPathCharacters) {
  // '.' is the prefix separator; '/' and '\\' would reach a filename.
  for (const char* bad : {"a.b", ".", "..", "a/b", "/etc", "a\\b", "a b",
                          "a\tb", "a\nb", "\xc3\xbc", "a:b", "a*"}) {
    EXPECT_TRUE(validate_tenant(bad)) << bad;
  }
}

TEST(ValidateTenant, RejectionNamesTheOffendingCharacter) {
  const auto reason = validate_tenant("a/b");
  ASSERT_TRUE(reason);
  EXPECT_NE(reason->find('/'), std::string::npos) << *reason;
}

TEST(PayloadStrings, RoundTripInSequence) {
  ByteVec payload;
  append_string(payload, "alice");
  append_string(payload, "");
  append_string(payload, std::string(300, 'z'));

  std::size_t pos = 0;
  const auto a = read_string(ByteSpan{payload}, pos);
  const auto b = read_string(ByteSpan{payload}, pos);
  const auto c = read_string(ByteSpan{payload}, pos);
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(*a, "alice");
  EXPECT_EQ(*b, "");
  EXPECT_EQ(*c, std::string(300, 'z'));
  EXPECT_EQ(pos, payload.size());
  EXPECT_FALSE(read_string(ByteSpan{payload}, pos));  // exhausted
}

TEST(PayloadStrings, TruncatedPayloadIsRejectedNotRead) {
  ByteVec payload;
  append_string(payload, "hello");
  payload.resize(payload.size() - 2);  // cut into the body
  std::size_t pos = 0;
  EXPECT_FALSE(read_string(ByteSpan{payload}, pos));

  ByteVec header_only{Byte{0x05}};  // half a u16 length
  pos = 0;
  EXPECT_FALSE(read_string(ByteSpan{header_only}, pos));
}

class SocketPair {
 public:
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a_ = fds[0];
    b_ = fds[1];
  }
  ~SocketPair() {
    if (a_ >= 0) ::close(a_);
    if (b_ >= 0) ::close(b_);
  }
  void close_a() {
    ::close(a_);
    a_ = -1;
  }
  int a() const { return a_; }
  int b() const { return b_; }

 private:
  int a_ = -1, b_ = -1;
};

TEST(FrameIo, RoundTripsTypeAndPayload) {
  SocketPair pair;
  const std::string text = "stats payload";
  write_frame(pair.a(), MsgType::kOk, text);

  Frame frame;
  ASSERT_TRUE(read_frame(pair.b(), frame));
  EXPECT_EQ(frame.type, MsgType::kOk);
  EXPECT_EQ(std::string(frame.payload.begin(), frame.payload.end()), text);
}

TEST(FrameIo, EmptyPayloadAndCleanEofAtFrameBoundary) {
  SocketPair pair;
  write_frame(pair.a(), MsgType::kPing, ByteSpan{});
  Frame frame;
  ASSERT_TRUE(read_frame(pair.b(), frame));
  EXPECT_EQ(frame.type, MsgType::kPing);
  EXPECT_TRUE(frame.payload.empty());

  pair.close_a();
  EXPECT_FALSE(read_frame(pair.b(), frame));  // EOF between frames: false
}

TEST(FrameIo, TruncatedFrameMidHeaderThrows) {
  SocketPair pair;
  const Byte partial[2] = {Byte{0x10}, Byte{0x00}};
  ASSERT_EQ(::send(pair.a(), partial, sizeof(partial), 0),
            static_cast<ssize_t>(sizeof(partial)));
  pair.close_a();
  Frame frame;
  EXPECT_THROW(read_frame(pair.b(), frame), ProtocolError);
}

TEST(FrameIo, OversizedFrameIsRejectedBeforeAllocation) {
  SocketPair pair;
  Byte header[5];
  store_le(header, kMaxFramePayload + 1);
  header[4] = static_cast<Byte>(MsgType::kPutData);
  ASSERT_EQ(::send(pair.a(), header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));
  Frame frame;
  EXPECT_THROW(read_frame(pair.b(), frame), ProtocolError);
}

TEST(FrameReaderTest, StreamsPayloadsAcrossCoalescedFrames) {
  SocketPair pair;
  ByteVec d0(32), d1(48);
  for (std::size_t i = 0; i < d0.size(); ++i) d0[i] = static_cast<Byte>(i);
  for (std::size_t i = 0; i < d1.size(); ++i) d1[i] = static_cast<Byte>(200 - i);
  write_frame(pair.a(), MsgType::kPutData, ByteSpan{d0});
  write_frame(pair.a(), MsgType::kPutData, ByteSpan{d1});
  write_frame(pair.a(), MsgType::kPutEnd, ByteSpan{});
  pair.close_a();

  FrameReader reader(pair.b());
  MsgType type;
  std::uint32_t len;
  ASSERT_TRUE(reader.next_header(type, len));
  EXPECT_EQ(type, MsgType::kPutData);
  ASSERT_EQ(len, d0.size());
  // Streaming style: drain the payload in odd-sized pieces.
  ByteVec got(len);
  std::size_t off = 0;
  while (off < got.size()) {
    const std::size_t want = std::min<std::size_t>(7, got.size() - off);
    const std::size_t n = reader.read_payload({got.data() + off, want});
    ASSERT_GT(n, 0u);
    off += n;
  }
  EXPECT_EQ(got, d0);
  EXPECT_EQ(reader.payload_remaining(), 0u);

  // Whole-frame style interoperates on the same reader.
  Frame frame;
  ASSERT_TRUE(reader.read_frame(frame));
  EXPECT_EQ(frame.type, MsgType::kPutData);
  EXPECT_EQ(frame.payload, d1);

  ASSERT_TRUE(reader.next_header(type, len));
  EXPECT_EQ(type, MsgType::kPutEnd);
  EXPECT_EQ(len, 0u);
  EXPECT_FALSE(reader.next_header(type, len));  // clean EOF at boundary
  // All three frames were written before the first read; the coalescing
  // buffer held more than a lone 5-byte header at its peak.
  EXPECT_GE(reader.buffer_high_water(), 5u);
}

TEST(FrameReaderTest, NextHeaderWithUnconsumedPayloadThrows) {
  SocketPair pair;
  const ByteVec data(16, Byte{0xAB});
  write_frame(pair.a(), MsgType::kPutData, ByteSpan{data});
  FrameReader reader(pair.b());
  MsgType type;
  std::uint32_t len;
  ASSERT_TRUE(reader.next_header(type, len));
  Byte half[8];
  ASSERT_EQ(reader.read_payload({half, sizeof(half)}), sizeof(half));
  EXPECT_THROW(reader.next_header(type, len), ProtocolError);
}

TEST(FrameReaderTest, LargePayloadBypassesTheCoalescingBuffer) {
  SocketPair pair;
  ByteVec big(4096);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<Byte>(i * 31);
  }
  write_frame(pair.a(), MsgType::kData, ByteSpan{big});
  // A 64-byte buffer cannot hold the payload: after the buffered prefix
  // is drained, the rest must be read straight into the caller's memory.
  FrameReader reader(pair.b(), /*buffer_bytes=*/64);
  Frame frame;
  ASSERT_TRUE(reader.read_frame(frame));
  EXPECT_EQ(frame.payload, big);
  EXPECT_LE(reader.buffer_high_water(), 64u);
}

TEST(FrameReaderTest, EofMidPayloadThrows) {
  SocketPair pair;
  Byte header[5];
  store_le(header, std::uint32_t{100});
  header[4] = static_cast<Byte>(MsgType::kPutData);
  ASSERT_EQ(::send(pair.a(), header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));
  const char some[10] = {};
  ASSERT_EQ(::send(pair.a(), some, sizeof(some), 0),
            static_cast<ssize_t>(sizeof(some)));
  pair.close_a();
  FrameReader reader(pair.b());
  Frame frame;
  EXPECT_THROW(reader.read_frame(frame), ProtocolError);
}

TEST(FrameReaderTest, OversizedFrameIsRejectedBeforeAllocation) {
  SocketPair pair;
  Byte header[5];
  store_le(header, kMaxFramePayload + 1);
  header[4] = static_cast<Byte>(MsgType::kPutData);
  ASSERT_EQ(::send(pair.a(), header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));
  FrameReader reader(pair.b());
  MsgType type;
  std::uint32_t len;
  EXPECT_THROW(reader.next_header(type, len), ProtocolError);
}

TEST(TransportStatsTest, WriteFrameIsOneVectoredSyscall) {
  SocketPair pair;
  reset_transport_stats();
  const std::string text = "hello transport";
  write_frame(pair.a(), MsgType::kOk, text);
  const auto after_write = transport_stats();
  // Header + payload leave in a single sendmsg — the bytes-per-syscall
  // contract the bench report is built on.
  EXPECT_EQ(after_write.write_calls, 1u);
  EXPECT_EQ(after_write.write_bytes, 5u + text.size());

  FrameReader reader(pair.b());
  Frame frame;
  ASSERT_TRUE(reader.read_frame(frame));
  EXPECT_EQ(std::string(frame.payload.begin(), frame.payload.end()), text);
  const auto after_read = transport_stats();
  // The whole frame arrives in one coalesced read.
  EXPECT_EQ(after_read.read_calls, 1u);
  EXPECT_EQ(after_read.read_bytes, 5u + text.size());
}

TEST(ListenerTest, TcpEphemeralAcceptAndConnect) {
  Listener listener;
  listener.listen("tcp:0");
  ASSERT_GT(listener.port(), 0);
  const std::string spec = "tcp:" + std::to_string(listener.port());
  EXPECT_EQ(listener.spec(), "tcp:0");  // as requested; port() resolves

  std::thread server([&] {
    const int fd = listener.accept();
    ASSERT_GE(fd, 0);
    Frame frame;
    ASSERT_TRUE(read_frame(fd, frame));
    write_frame(fd, MsgType::kOk, frame.payload.empty()
                                      ? std::string("pong")
                                      : std::string("echo"));
    ::close(fd);
  });

  const int fd = connect_to(spec);
  ASSERT_GE(fd, 0);
  write_frame(fd, MsgType::kPing, ByteSpan{});
  Frame reply;
  ASSERT_TRUE(read_frame(fd, reply));
  EXPECT_EQ(reply.type, MsgType::kOk);
  ::close(fd);
  server.join();
  listener.close();
}

TEST(ListenerTest, UnixSocketRoundTripAndCleanup) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("mhd_proto_" + std::to_string(::getpid()) + ".sock");
  const std::string spec = "unix:" + path.string();
  Listener listener;
  listener.listen(spec);
  ASSERT_TRUE(std::filesystem::exists(path));

  std::thread server([&] {
    const int fd = listener.accept();
    ASSERT_GE(fd, 0);
    Frame frame;
    ASSERT_TRUE(read_frame(fd, frame));
    write_frame(fd, MsgType::kOk, std::string("pong"));
    ::close(fd);
  });

  const int fd = connect_to(spec);
  ASSERT_GE(fd, 0);
  write_frame(fd, MsgType::kPing, ByteSpan{});
  Frame reply;
  ASSERT_TRUE(read_frame(fd, reply));
  EXPECT_EQ(reply.type, MsgType::kOk);
  ::close(fd);
  server.join();

  listener.close();  // unlinks the socket path
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(ListenerTest, WakeUnblocksAccept) {
  Listener listener;
  listener.listen("tcp:0");
  std::thread blocked([&] { EXPECT_EQ(listener.accept(), -1); });
  listener.wake();
  blocked.join();
  listener.close();
}

}  // namespace
}  // namespace mhd::server
