// Property sweep: every engine must reconstruct every file byte-exactly
// across many randomized corpora. For MHD this doubles as a fuzz test of
// the match-extension machinery — the engine throws internally if the
// duplicate-segment log ever fails to tile a file.
#include <gtest/gtest.h>

#include "mhd/sim/runner.h"
#include "mhd/workload/presets.h"

namespace mhd {
namespace {

class SeedSweepTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
};

TEST_P(SeedSweepTest, VerifiedAcrossSeeds) {
  const auto& [algorithm, seed] = GetParam();
  CorpusConfig cfg = test_preset(seed);
  // Vary the shape with the seed so sweeps explore different regimes.
  cfg.machines = 2 + seed % 3;
  cfg.snapshots = 3 + seed % 2;
  cfg.change_rate = 0.3 + 0.1 * static_cast<double>(seed % 4);
  cfg.insert_fraction = 0.15;
  cfg.delete_fraction = 0.10;
  const Corpus corpus(cfg);

  RunSpec spec;
  spec.algorithm = algorithm;
  spec.engine.ecs = 512 << (seed % 3);
  spec.engine.sd = 4 << (seed % 3);
  spec.engine.bloom_bytes = 64 * 1024;
  spec.verify = true;  // throws on any reconstruction mismatch
  const auto r = run_experiment(spec, corpus);
  EXPECT_EQ(r.input_bytes, corpus.total_bytes());
  EXPECT_GT(r.counters.dup_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    MhdFuzz, SeedSweepTest,
    ::testing::Combine(::testing::Values("bf-mhd"),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u,
                                         10u, 11u, 12u)));

INSTANTIATE_TEST_SUITE_P(
    BaselineSpotChecks, SeedSweepTest,
    ::testing::Combine(::testing::Values("cdc", "bimodal", "subchunk",
                                         "sparseindexing", "fbc",
                                         "extremebinning"),
                       ::testing::Values(21u, 22u)));

}  // namespace
}  // namespace mhd
