// End-to-end test on the real filesystem backend: the same engine code
// that runs in simulation must work against actual files on disk
// (the paper's user-space Ext3 prototype path).
#include <gtest/gtest.h>

#include <filesystem>

#include "mhd/sim/runner.h"
#include "mhd/store/file_backend.h"
#include "mhd/workload/presets.h"

namespace mhd {
namespace {

class FileBackendE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mhd_e2e_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(FileBackendE2eTest, MhdCorpusRoundTripOnDisk) {
  CorpusConfig cfg = test_preset(31);
  cfg.machines = 3;
  cfg.snapshots = 3;
  const Corpus corpus(cfg);

  RunSpec spec;
  spec.algorithm = "bf-mhd";
  spec.engine.ecs = 1024;
  spec.engine.sd = 8;
  spec.engine.bloom_bytes = 64 * 1024;
  spec.verify = true;  // byte-exact reconstruction from real files

  FileBackend backend(dir_);
  const auto r = run_experiment(spec, corpus, backend);
  EXPECT_GT(r.counters.dup_bytes, 0u);

  // The on-disk layout matches the paper's: four namespaces of
  // hash-addressable files.
  EXPECT_TRUE(std::filesystem::exists(dir_ / "diskchunks"));
  EXPECT_TRUE(std::filesystem::exists(dir_ / "hooks"));
  EXPECT_TRUE(std::filesystem::exists(dir_ / "manifests"));
  EXPECT_TRUE(std::filesystem::exists(dir_ / "filemanifests"));
  EXPECT_GT(backend.object_count(Ns::kDiskChunk), 0u);
  EXPECT_GT(backend.object_count(Ns::kHook), 0u);
}

TEST_F(FileBackendE2eTest, RepositorySurvivesReopen) {
  CorpusConfig cfg = test_preset(32);
  cfg.machines = 2;
  cfg.snapshots = 2;
  const Corpus corpus(cfg);

  EngineConfig ecfg;
  ecfg.ecs = 1024;
  ecfg.sd = 8;
  ecfg.bloom_bytes = 64 * 1024;

  {
    FileBackend backend(dir_);
    ObjectStore store(backend);
    auto engine = make_engine("bf-mhd", store, ecfg);
    for (std::size_t i = 0; i < corpus.files().size(); ++i) {
      auto src = corpus.open(i);
      engine->add_file(corpus.files()[i].name, *src);
    }
    engine->finish();
  }

  // Fresh process: restore everything from disk only.
  FileBackend reopened(dir_);
  ObjectStore store(reopened);
  auto engine = make_engine("bf-mhd", store, ecfg);
  for (std::size_t i = 0; i < corpus.files().size(); ++i) {
    auto src = corpus.open(i);
    const ByteVec original = read_all(*src);
    const auto restored = engine->reconstruct(corpus.files()[i].name);
    ASSERT_TRUE(restored.has_value()) << corpus.files()[i].name;
    EXPECT_TRUE(equal(*restored, original)) << corpus.files()[i].name;
  }
}

}  // namespace
}  // namespace mhd
