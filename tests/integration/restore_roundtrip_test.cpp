// Restore round-trip property: for EVERY engine × chunker combination,
// back up a generated corpus and restore every file through the streaming
// RestoreReader path, byte-comparing against the original. Before this
// test, only file_backend_e2e_test covered one engine on one chunker (and
// through DedupEngine::reconstruct, not the streaming reader).
#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "mhd/sim/runner.h"
#include "mhd/store/memory_backend.h"
#include "mhd/store/restore_reader.h"
#include "mhd/workload/presets.h"

namespace mhd {
namespace {

class RestoreRoundTripTest
    : public ::testing::TestWithParam<std::tuple<std::string, ChunkerKind>> {};

TEST_P(RestoreRoundTripTest, EveryFileRestoresByteExactly) {
  const auto& [engine_name, chunker] = GetParam();

  CorpusConfig corpus_cfg = test_preset(77);
  corpus_cfg.machines = 2;
  corpus_cfg.snapshots = 3;
  const Corpus corpus(corpus_cfg);

  EngineConfig cfg;
  cfg.ecs = 1024;
  cfg.sd = 8;
  cfg.bloom_bytes = 64 * 1024;
  cfg.chunker = chunker;

  MemoryBackend backend;
  ObjectStore store(backend);
  auto engine = make_engine(engine_name, store, cfg);
  for (std::size_t i = 0; i < corpus.files().size(); ++i) {
    auto src = corpus.open(i);
    engine->add_file(corpus.files()[i].name, *src);
  }
  engine->finish();

  for (std::size_t i = 0; i < corpus.files().size(); ++i) {
    const std::string& name = corpus.files()[i].name;
    SCOPED_TRACE(name);
    auto src = corpus.open(i);
    const ByteVec original = read_all(*src);

    auto reader = RestoreReader::open(backend, name);
    ASSERT_TRUE(reader.has_value());
    EXPECT_EQ(reader->total_length(), original.size());
    const ByteVec restored = read_all(*reader);
    EXPECT_TRUE(reader->ok());
    ASSERT_TRUE(equal(restored, original));
    EXPECT_EQ(reader->produced(), original.size());
  }
}

std::vector<std::tuple<std::string, ChunkerKind>> all_combinations() {
  std::vector<std::tuple<std::string, ChunkerKind>> out;
  std::vector<std::string> engines = engine_names();
  const auto& extensions = extension_engine_names();
  engines.insert(engines.end(), extensions.begin(), extensions.end());
  for (const auto& e : engines) {
    for (const ChunkerKind k :
         {ChunkerKind::kRabin, ChunkerKind::kTttd, ChunkerKind::kGear}) {
      out.emplace_back(e, k);
    }
  }
  return out;
}

std::string combo_name(
    const testing::TestParamInfo<RestoreRoundTripTest::ParamType>& info) {
  std::string name = std::get<0>(info.param);
  name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
  return name + "_" + chunker_kind_name(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(EngineByChunker, RestoreRoundTripTest,
                         testing::ValuesIn(all_combinations()), combo_name);

}  // namespace
}  // namespace mhd
