// Crash-recovery harness — the capstone of the durability story.
//
// For EVERY engine: ingest a corpus into a framed store with a
// deterministic crash-stop injected at the k-th storage mutation (with a
// partial final write, the nastiest case), then model a restart: adopt the
// surviving raw bytes, fsck --repair them, resume by re-ingesting the
// whole corpus through a fresh engine, and finally prove every file
// restores byte-identically. Repeated for crash points spread across the
// whole ingest — first op, middles, last op.
#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mhd/dedup/rewrite.h"
#include "mhd/sim/runner.h"
#include "mhd/store/container_store.h"
#include "mhd/store/fault_backend.h"
#include "mhd/store/framed_backend.h"
#include "mhd/store/memory_backend.h"
#include "mhd/store/scrub.h"
#include "mhd/store/store_errors.h"
#include "mhd/workload/presets.h"

namespace mhd {
namespace {

CorpusConfig small_corpus() {
  CorpusConfig c = test_preset(91);
  c.machines = 2;
  c.snapshots = 2;
  return c;
}

EngineConfig engine_config() {
  EngineConfig cfg;
  cfg.ecs = 1024;
  cfg.sd = 8;
  cfg.bloom_bytes = 64 * 1024;
  return cfg;
}

/// Ingests the whole corpus through a fresh engine over `backend`.
/// Returns false if a crash-stop cut the ingest short.
bool ingest_all(const std::string& engine_name, const Corpus& corpus,
                StorageBackend& backend) {
  ObjectStore store(backend);
  auto engine = make_engine(engine_name, store, engine_config());
  try {
    for (std::size_t i = 0; i < corpus.files().size(); ++i) {
      auto src = corpus.open(i);
      engine->add_file(corpus.files()[i].name, *src);
    }
    engine->finish();
  } catch (const CrashStopError&) {
    return false;
  }
  return true;
}

class CrashRecoveryTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CrashRecoveryTest, CrashAtEveryPhaseThenFsckThenResumeRestoresExactly) {
  const std::string engine_name = GetParam();
  const Corpus corpus(small_corpus());

  // Dry run on a scratch store to learn how many storage mutations a full
  // ingest performs — crash points are picked across that range.
  std::uint64_t total_ops = 0;
  {
    MemoryBackend scratch;
    FaultInjectingBackend counter(scratch, FaultPlan{});
    FramedBackend framed(counter);
    ASSERT_TRUE(ingest_all(engine_name, corpus, framed));
    total_ops = counter.mutation_ops();
  }
  ASSERT_GT(total_ops, 0u);

  std::set<std::uint64_t> crash_points = {1, total_ops / 4, total_ops / 2,
                                          3 * total_ops / 4, total_ops};
  crash_points.erase(0);

  for (const std::uint64_t k : crash_points) {
    SCOPED_TRACE(engine_name + " crash@" + std::to_string(k) + "/" +
                 std::to_string(total_ops));

    // The raw MemoryBackend survives the "process crash"; everything
    // layered on top is torn down and rebuilt, like a real restart.
    MemoryBackend raw;
    {
      FaultPlan plan;
      plan.crash = FaultPlan::Tear{k, 0.5};  // half the final write lands
      FaultInjectingBackend faulty(raw, plan);
      FramedBackend framed(faulty);
      ASSERT_FALSE(ingest_all(engine_name, corpus, framed))
          << "crash point beyond the ingest's op count";
    }

    // Restart: repair the surviving bytes, then require a clean bill.
    fsck_repository(raw, /*repair=*/true);
    const auto after = fsck_repository(raw, /*repair=*/false);
    EXPECT_TRUE(after.clean()) << after.to_string();

    // Resume: re-ingest everything (dedup makes it cheap), then every
    // file must restore byte-identically through the verifying reads.
    FramedBackend recovered(raw);
    ASSERT_TRUE(ingest_all(engine_name, corpus, recovered));

    ObjectStore store(recovered);
    auto engine = make_engine(engine_name, store, engine_config());
    for (std::size_t i = 0; i < corpus.files().size(); ++i) {
      SCOPED_TRACE(corpus.files()[i].name);
      auto src = corpus.open(i);
      const ByteVec original = read_all(*src);
      const auto restored = engine->reconstruct(corpus.files()[i].name);
      ASSERT_TRUE(restored.has_value());
      ASSERT_TRUE(equal(*restored, original));
    }
  }
}

// --- Persistent-index crash windows ---------------------------------------
//
// The generic sweep above crashes at evenly spaced ops; these two tests aim
// the crash directly at the index's own durability machinery: mid
// journal-segment append and mid compaction (shard page / meta writes).
// Either way the repo must fsck clean, resume, and restore byte-exactly —
// the index is advisory and must never take user data down with it.

/// Records the (ns, name) of every mutating op, 1-based, in the exact
/// order FaultInjectingBackend counts them — so a test can aim crash@N at
/// a specific object class.
class RecordingBackend final : public StorageBackend {
 public:
  explicit RecordingBackend(StorageBackend& inner) : inner_(inner) {}

  void put(Ns ns, const std::string& name, ByteSpan data) override {
    note(ns, name);
    inner_.put(ns, name, data);
  }
  void append(Ns ns, const std::string& name, ByteSpan data) override {
    note(ns, name);
    inner_.append(ns, name, data);
  }
  bool remove(Ns ns, const std::string& name) override {
    note(ns, name);
    return inner_.remove(ns, name);
  }
  std::optional<ByteVec> get(Ns ns, const std::string& name) const override {
    return inner_.get(ns, name);
  }
  std::optional<ByteVec> get_range(Ns ns, const std::string& name,
                                   std::uint64_t offset,
                                   std::uint64_t length) const override {
    return inner_.get_range(ns, name, offset, length);
  }
  bool exists(Ns ns, const std::string& name) const override {
    return inner_.exists(ns, name);
  }
  std::uint64_t object_count(Ns ns) const override {
    return inner_.object_count(ns);
  }
  std::uint64_t content_bytes(Ns ns) const override {
    return inner_.content_bytes(ns);
  }
  std::vector<std::string> list(Ns ns) const override {
    return inner_.list(ns);
  }
  void seal(Ns ns, const std::string& name) override {
    inner_.seal(ns, name);
  }

  /// 1-based op numbers in `ns` whose object name starts with `prefix`.
  std::vector<std::uint64_t> ops_with_prefix(Ns ns,
                                             const std::string& prefix) const {
    std::vector<std::uint64_t> out;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (ops_[i].first == ns && ops_[i].second.rfind(prefix, 0) == 0) {
        out.push_back(i + 1);
      }
    }
    return out;
  }

  /// 1-based op numbers whose object name starts with `prefix` in kIndex.
  std::vector<std::uint64_t> index_ops_with_prefix(
      const std::string& prefix) const {
    return ops_with_prefix(Ns::kIndex, prefix);
  }

 private:
  void note(Ns ns, const std::string& name) { ops_.emplace_back(ns, name); }

  StorageBackend& inner_;
  std::vector<std::pair<Ns, std::string>> ops_;
};

EngineConfig disk_index_config() {
  EngineConfig cfg = engine_config();
  cfg.index_impl = IndexImpl::kDisk;
  // Shrunk geometry so the test corpus crosses several journal segments
  // and at least one compaction during ingest.
  cfg.index_shards = 8;
  cfg.index_journal_batch = 4;
  cfg.index_compact_threshold = 48;
  return cfg;
}

bool ingest_all_disk_index(const Corpus& corpus, StorageBackend& backend) {
  ObjectStore store(backend);
  // Construction is inside the try: a crash aimed at the index's very
  // first meta write fires in the PersistentIndex constructor.
  try {
    auto engine = make_engine("bf-mhd", store, disk_index_config());
    for (std::size_t i = 0; i < corpus.files().size(); ++i) {
      auto src = corpus.open(i);
      engine->add_file(corpus.files()[i].name, *src);
    }
    engine->finish();
  } catch (const CrashStopError&) {
    return false;
  }
  return true;
}

void crash_at_index_ops(const std::string& op_prefix) {
  const Corpus corpus(small_corpus());

  // Dry run: map every mutation number to the object it wrote, so the
  // crash points below land exactly on the index ops we target.
  std::vector<std::uint64_t> target_ops;
  {
    MemoryBackend scratch;
    RecordingBackend recorder(scratch);
    FramedBackend framed(recorder);
    ASSERT_TRUE(ingest_all_disk_index(corpus, framed));
    target_ops = recorder.index_ops_with_prefix(op_prefix);
  }
  ASSERT_FALSE(target_ops.empty())
      << "ingest never wrote a " << op_prefix << "* index object — the "
      << "shrunken geometry no longer exercises this crash window";

  // First, middle and last occurrence: covers segment 0, steady state,
  // and the final flush (for compaction: first/last page + meta commit).
  std::set<std::uint64_t> crash_points = {
      target_ops.front(), target_ops[target_ops.size() / 2],
      target_ops.back()};

  for (const std::uint64_t k : crash_points) {
    SCOPED_TRACE("crash@" + std::to_string(k) + " (" + op_prefix + "*)");
    MemoryBackend raw;
    {
      FaultPlan plan;
      plan.crash = FaultPlan::Tear{k, 0.5};  // half the write lands
      FaultInjectingBackend faulty(raw, plan);
      FramedBackend framed(faulty);
      ASSERT_FALSE(ingest_all_disk_index(corpus, framed));
    }

    fsck_repository(raw, /*repair=*/true);
    const auto after = fsck_repository(raw, /*repair=*/false);
    EXPECT_TRUE(after.clean()) << after.to_string();

    FramedBackend recovered(raw);
    ASSERT_TRUE(ingest_all_disk_index(corpus, recovered));

    ObjectStore store(recovered);
    auto engine = make_engine("bf-mhd", store, disk_index_config());
    for (std::size_t i = 0; i < corpus.files().size(); ++i) {
      SCOPED_TRACE(corpus.files()[i].name);
      auto src = corpus.open(i);
      const ByteVec original = read_all(*src);
      const auto restored = engine->reconstruct(corpus.files()[i].name);
      ASSERT_TRUE(restored.has_value());
      ASSERT_TRUE(equal(*restored, original));
    }
  }
}

TEST(IndexCrashRecovery, CrashDuringJournalAppendThenFsckRestoresExactly) {
  crash_at_index_ops("journal-");
}

TEST(IndexCrashRecovery, CrashDuringCompactionThenFsckRestoresExactly) {
  crash_at_index_ops("shard-");
}

TEST(IndexCrashRecovery, CrashAtMetaCommitThenFsckRestoresExactly) {
  crash_at_index_ops("meta");
}

// --- Container-store crash windows ----------------------------------------
//
// Crashes aimed directly at the container layer's durability machinery:
// mid container-stream append/seal (the packed data itself) and mid
// chunk-map commit (the chunk's durability point — under HAR this also
// covers rewrite commits). The committed-map invariant says a crash can
// only lose bytes no committed map references, so after fsck --repair the
// repo must be clean, resumable, and restore byte-exactly.

ContainerConfig crash_container_config() {
  ContainerConfig cc;
  cc.container_bytes = 64 << 10;  // small: several containers per image
  cc.cache_bytes = 1 << 20;
  return cc;
}

EngineConfig container_engine_config() {
  EngineConfig cfg = engine_config();
  cfg.container_bytes = 64 << 10;
  cfg.restore_cache_bytes = 1 << 20;
  // HAR so later generations rewrite duplicates: chunk-map crash points
  // then include rewrite commits, not just first-copy commits.
  cfg.rewrite = RewriteMode::kHar;
  return cfg;
}

bool ingest_all_containers(const Corpus& corpus, StorageBackend& lower) {
  try {
    FramedBackend framed(lower);
    ContainerBackend containers(framed, crash_container_config());
    ObjectStore store(containers);
    auto engine = make_engine("bf-mhd", store, container_engine_config());
    for (std::size_t i = 0; i < corpus.files().size(); ++i) {
      if (i > 0 &&
          corpus.files()[i].snapshot != corpus.files()[i - 1].snapshot) {
        engine->end_snapshot();
      }
      auto src = corpus.open(i);
      engine->add_file(corpus.files()[i].name, *src);
    }
    engine->end_snapshot();
    engine->finish();
    containers.flush();
  } catch (const CrashStopError&) {
    return false;
  }
  return true;
}

void verify_container_restores(const Corpus& corpus, StorageBackend& raw) {
  FramedBackend framed(raw);
  ContainerBackend containers(framed, crash_container_config());
  ObjectStore store(containers);
  auto engine = make_engine("bf-mhd", store, container_engine_config());
  for (std::size_t i = 0; i < corpus.files().size(); ++i) {
    SCOPED_TRACE(corpus.files()[i].name);
    auto src = corpus.open(i);
    const ByteVec original = read_all(*src);
    const auto restored = engine->reconstruct(corpus.files()[i].name);
    ASSERT_TRUE(restored.has_value());
    ASSERT_TRUE(equal(*restored, original));
  }
}

void crash_at_container_ops(Ns target_ns) {
  const Corpus corpus(small_corpus());

  std::vector<std::uint64_t> target_ops;
  {
    MemoryBackend scratch;
    RecordingBackend recorder(scratch);
    ASSERT_TRUE(ingest_all_containers(corpus, recorder));
    target_ops = recorder.ops_with_prefix(target_ns, "");
  }
  ASSERT_FALSE(target_ops.empty())
      << "ingest never touched " << ns_name(target_ns)
      << " — the container stack is not being exercised";

  std::set<std::uint64_t> crash_points = {
      target_ops.front(), target_ops[target_ops.size() / 2],
      target_ops.back()};

  for (const std::uint64_t k : crash_points) {
    SCOPED_TRACE("crash@" + std::to_string(k) + " (" + ns_name(target_ns) +
                 ")");
    MemoryBackend raw;
    {
      FaultPlan plan;
      plan.crash = FaultPlan::Tear{k, 0.5};  // half the final write lands
      FaultInjectingBackend faulty(raw, plan);
      ASSERT_FALSE(ingest_all_containers(corpus, faulty));
    }

    fsck_repository(raw, /*repair=*/true);
    const auto after = fsck_repository(raw, /*repair=*/false);
    EXPECT_TRUE(after.clean()) << after.to_string();

    ASSERT_TRUE(ingest_all_containers(corpus, raw));
    verify_container_restores(corpus, raw);
  }
}

TEST(ContainerCrashRecovery, CrashDuringContainerAppendOrSealThenFsckRestores) {
  crash_at_container_ops(Ns::kContainer);
}

TEST(ContainerCrashRecovery, CrashDuringChunkMapCommitThenFsckRestores) {
  crash_at_container_ops(Ns::kChunkMap);
}

std::vector<std::string> all_engines() {
  std::vector<std::string> engines = engine_names();
  const auto& extensions = extension_engine_names();
  engines.insert(engines.end(), extensions.begin(), extensions.end());
  return engines;
}

std::string pretty(const testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
  return name;
}

INSTANTIATE_TEST_SUITE_P(EveryEngine, CrashRecoveryTest,
                         testing::ValuesIn(all_engines()), pretty);

}  // namespace
}  // namespace mhd
