// Crash-recovery harness — the capstone of the durability story.
//
// For EVERY engine: ingest a corpus into a framed store with a
// deterministic crash-stop injected at the k-th storage mutation (with a
// partial final write, the nastiest case), then model a restart: adopt the
// surviving raw bytes, fsck --repair them, resume by re-ingesting the
// whole corpus through a fresh engine, and finally prove every file
// restores byte-identically. Repeated for crash points spread across the
// whole ingest — first op, middles, last op.
#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mhd/sim/runner.h"
#include "mhd/store/fault_backend.h"
#include "mhd/store/framed_backend.h"
#include "mhd/store/memory_backend.h"
#include "mhd/store/scrub.h"
#include "mhd/store/store_errors.h"
#include "mhd/workload/presets.h"

namespace mhd {
namespace {

CorpusConfig small_corpus() {
  CorpusConfig c = test_preset(91);
  c.machines = 2;
  c.snapshots = 2;
  return c;
}

EngineConfig engine_config() {
  EngineConfig cfg;
  cfg.ecs = 1024;
  cfg.sd = 8;
  cfg.bloom_bytes = 64 * 1024;
  return cfg;
}

/// Ingests the whole corpus through a fresh engine over `backend`.
/// Returns false if a crash-stop cut the ingest short.
bool ingest_all(const std::string& engine_name, const Corpus& corpus,
                StorageBackend& backend) {
  ObjectStore store(backend);
  auto engine = make_engine(engine_name, store, engine_config());
  try {
    for (std::size_t i = 0; i < corpus.files().size(); ++i) {
      auto src = corpus.open(i);
      engine->add_file(corpus.files()[i].name, *src);
    }
    engine->finish();
  } catch (const CrashStopError&) {
    return false;
  }
  return true;
}

class CrashRecoveryTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CrashRecoveryTest, CrashAtEveryPhaseThenFsckThenResumeRestoresExactly) {
  const std::string engine_name = GetParam();
  const Corpus corpus(small_corpus());

  // Dry run on a scratch store to learn how many storage mutations a full
  // ingest performs — crash points are picked across that range.
  std::uint64_t total_ops = 0;
  {
    MemoryBackend scratch;
    FaultInjectingBackend counter(scratch, FaultPlan{});
    FramedBackend framed(counter);
    ASSERT_TRUE(ingest_all(engine_name, corpus, framed));
    total_ops = counter.mutation_ops();
  }
  ASSERT_GT(total_ops, 0u);

  std::set<std::uint64_t> crash_points = {1, total_ops / 4, total_ops / 2,
                                          3 * total_ops / 4, total_ops};
  crash_points.erase(0);

  for (const std::uint64_t k : crash_points) {
    SCOPED_TRACE(engine_name + " crash@" + std::to_string(k) + "/" +
                 std::to_string(total_ops));

    // The raw MemoryBackend survives the "process crash"; everything
    // layered on top is torn down and rebuilt, like a real restart.
    MemoryBackend raw;
    {
      FaultPlan plan;
      plan.crash = FaultPlan::Tear{k, 0.5};  // half the final write lands
      FaultInjectingBackend faulty(raw, plan);
      FramedBackend framed(faulty);
      ASSERT_FALSE(ingest_all(engine_name, corpus, framed))
          << "crash point beyond the ingest's op count";
    }

    // Restart: repair the surviving bytes, then require a clean bill.
    fsck_repository(raw, /*repair=*/true);
    const auto after = fsck_repository(raw, /*repair=*/false);
    EXPECT_TRUE(after.clean()) << after.to_string();

    // Resume: re-ingest everything (dedup makes it cheap), then every
    // file must restore byte-identically through the verifying reads.
    FramedBackend recovered(raw);
    ASSERT_TRUE(ingest_all(engine_name, corpus, recovered));

    ObjectStore store(recovered);
    auto engine = make_engine(engine_name, store, engine_config());
    for (std::size_t i = 0; i < corpus.files().size(); ++i) {
      SCOPED_TRACE(corpus.files()[i].name);
      auto src = corpus.open(i);
      const ByteVec original = read_all(*src);
      const auto restored = engine->reconstruct(corpus.files()[i].name);
      ASSERT_TRUE(restored.has_value());
      ASSERT_TRUE(equal(*restored, original));
    }
  }
}

std::vector<std::string> all_engines() {
  std::vector<std::string> engines = engine_names();
  const auto& extensions = extension_engine_names();
  engines.insert(engines.end(), extensions.begin(), extensions.end());
  return engines;
}

std::string pretty(const testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
  return name;
}

INSTANTIATE_TEST_SUITE_P(EveryEngine, CrashRecoveryTest,
                         testing::ValuesIn(all_engines()), pretty);

}  // namespace
}  // namespace mhd
