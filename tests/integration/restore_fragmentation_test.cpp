// Restore correctness + fragmentation harness for the container store.
//
// Multi-generation backups through the real container stack, for every
// engine x rewrite mode:
//   * every file of every generation restores byte-exactly (rewriting
//     must never change restored bytes, only their placement);
//   * CFL of the rewrite modes never falls below the no-rewrite baseline
//     (that is the entire point of CBR/HAR);
//   * CBR's container reads stay within the capping bound;
//   * concurrent restores through the shared bounded cache are safe
//     (exercised under TSan via the `restore` ctest label).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "mhd/dedup/rewrite.h"
#include "mhd/sim/runner.h"
#include "mhd/store/container_store.h"
#include "mhd/store/memory_backend.h"
#include "mhd/store/restore_reader.h"
#include "mhd/workload/presets.h"

namespace mhd {
namespace {

constexpr std::uint64_t kContainerBytes = 128 << 10;
constexpr std::uint64_t kCacheBytes = 8 << 20;  // >> repo: no re-reads
constexpr std::uint32_t kCbrCap = 2;

CorpusConfig generations_corpus(std::uint32_t snapshots = 8) {
  CorpusConfig c = test_preset(17);
  c.machines = 2;
  c.snapshots = snapshots;  // >= 5 generations of accumulated fragmentation
  c.image_bytes = 256 << 10;
  return c;
}

EngineConfig container_config(RewriteMode mode) {
  EngineConfig cfg;
  cfg.ecs = 1024;
  cfg.sd = 8;
  cfg.bloom_bytes = 64 * 1024;
  cfg.container_bytes = kContainerBytes;
  cfg.restore_cache_bytes = kCacheBytes;
  cfg.rewrite = mode;
  cfg.cbr_segment_bytes = 256 << 10;  // one segment per corpus file
  cfg.cbr_cap = kCbrCap;
  cfg.har_utilization = 0.5;
  return cfg;
}

std::vector<std::string> all_engines() {
  std::vector<std::string> engines = engine_names();
  const auto& extensions = extension_engine_names();
  engines.insert(engines.end(), extensions.begin(), extensions.end());
  return engines;
}

/// Ingests the corpus (snapshot boundaries driving end_snapshot) and
/// verifies every file byte-exactly; returns the result with restore
/// metrics of the newest generation.
ExperimentResult run_mode(const std::string& engine, const Corpus& corpus,
                          RewriteMode mode) {
  RunSpec spec;
  spec.algorithm = engine;
  spec.engine = container_config(mode);
  spec.verify = true;  // byte-exact restore of EVERY file, all generations
  spec.measure_restore = true;
  return run_experiment(spec, corpus);
}

class RestoreFragmentationTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(RestoreFragmentationTest, EveryRewriteModeRestoresByteExactly) {
  const Corpus corpus(generations_corpus(/*snapshots=*/5));
  for (const RewriteMode mode :
       {RewriteMode::kNone, RewriteMode::kCbr, RewriteMode::kHar}) {
    SCOPED_TRACE(std::string("rewrite=") + rewrite_mode_name(mode));
    // run_mode verifies byte-exact reconstruction of every file internally
    // (spec.verify) and throws on any mismatch.
    const ExperimentResult r = run_mode(GetParam(), corpus, mode);
    EXPECT_GT(r.restore.bytes, 0u);
    EXPECT_GT(r.containers_sealed, 0u);
    if (mode == RewriteMode::kNone) {
      EXPECT_EQ(r.counters.rewritten_chunks, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(EveryEngine, RestoreFragmentationTest,
                         testing::ValuesIn(all_engines()),
                         [](const testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           name.erase(
                               std::remove(name.begin(), name.end(), '-'),
                               name.end());
                           return name;
                         });

TEST(RestoreFragmentation, RewritingNeverWorsensLatestGenerationCfl) {
  const Corpus corpus(generations_corpus());
  const ExperimentResult none = run_mode("cdc", corpus, RewriteMode::kNone);
  const ExperimentResult cbr = run_mode("cdc", corpus, RewriteMode::kCbr);
  const ExperimentResult har = run_mode("cdc", corpus, RewriteMode::kHar);

  ASSERT_GT(none.restore.cfl, 0.0);
  // Non-strict with an epsilon: rewriting reshuffles placement, so tiny
  // regressions from rounding are tolerated — systematic ones are not.
  const double eps = 0.02;
  EXPECT_GE(cbr.restore.cfl, none.restore.cfl - eps)
      << "CBR made the latest generation MORE fragmented";
  EXPECT_GE(har.restore.cfl, none.restore.cfl - eps)
      << "HAR made the latest generation MORE fragmented";
  // The modes must actually have acted on this corpus, or the assertions
  // above are vacuous.
  EXPECT_GT(cbr.counters.rewritten_chunks, 0u);
  EXPECT_GT(har.counters.rewritten_chunks, 0u);
}

TEST(RestoreFragmentation, CbrContainerReadsStayWithinCappingBound) {
  const Corpus corpus(generations_corpus());
  const ExperimentResult r = run_mode("cdc", corpus, RewriteMode::kCbr);

  // Count the files (= CBR segments: segment size == file size here) of
  // the newest generation, the one measure_restore reads.
  std::uint64_t files = 0;
  for (const auto& f : corpus.files()) {
    if (f.snapshot == corpus.config().snapshots - 1) ++files;
  }
  ASSERT_GT(files, 0u);

  // Each segment may reference at most kCbrCap distinct old containers;
  // everything else it reads is freshly written data, which occupies at
  // most ceil(bytes / container) + 1 containers (write order is
  // sequential). The cache holds the whole repo, so no container is read
  // twice.
  const std::uint64_t fresh =
      (r.restore.bytes + kContainerBytes - 1) / kContainerBytes + 1;
  const std::uint64_t bound = files * kCbrCap + fresh;
  EXPECT_LE(r.restore.container_reads, bound)
      << "capping did not bound the newest generation's container spread";
  EXPECT_GT(r.restore.container_reads, 0u);
}

TEST(RestoreFragmentation, ConcurrentRestoresThroughSharedCacheAreByteExact) {
  const Corpus corpus(generations_corpus(/*snapshots=*/5));

  MemoryBackend mem;
  ContainerConfig cc;
  cc.container_bytes = kContainerBytes;
  // Tight cache: concurrent readers constantly hit/evict the same LRU.
  cc.cache_bytes = 2 * kContainerBytes;
  ContainerBackend containers(mem, cc);
  {
    ObjectStore store(containers);
    auto engine =
        make_engine("cdc", store, container_config(RewriteMode::kNone));
    for (std::size_t i = 0; i < corpus.files().size(); ++i) {
      auto src = corpus.open(i);
      engine->add_file(corpus.files()[i].name, *src);
    }
    engine->finish();
  }
  containers.flush();

  const std::size_t kThreads = 4;
  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      // Each worker restores a strided subset; subsets overlap containers.
      for (std::size_t i = t; i < corpus.files().size(); i += 2) {
        auto src = corpus.open(i);
        const ByteVec original = read_all(*src);
        auto reader = RestoreReader::open(containers, corpus.files()[i].name);
        if (!reader) {
          ++failures[t];
          continue;
        }
        ByteVec out;
        ByteVec buf(64 << 10);
        std::size_t n;
        while ((n = reader->read({buf.data(), buf.size()})) > 0) {
          out.insert(out.end(), buf.begin(),
                     buf.begin() + static_cast<std::ptrdiff_t>(n));
        }
        if (!reader->ok() || !equal(out, original)) ++failures[t];
      }
    });
  }
  for (auto& w : workers) w.join();
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "worker " << t;
  }
}

}  // namespace
}  // namespace mhd
