#include "mhd/sim/parallel.h"

#include <gtest/gtest.h>

#include "mhd/metrics/analysis.h"
#include "mhd/workload/presets.h"

namespace mhd {
namespace {

std::vector<RunSpec> sweep_specs() {
  std::vector<RunSpec> specs;
  for (const char* algo : {"bf-mhd", "cdc"}) {
    for (std::uint32_t ecs : {512u, 1024u}) {
      RunSpec s;
      s.algorithm = algo;
      s.engine.ecs = ecs;
      s.engine.sd = 8;
      s.engine.bloom_bytes = 64 * 1024;
      specs.push_back(s);
    }
  }
  return specs;
}

// Everything except measured CPU seconds must be identical.
void expect_equivalent(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_EQ(a.ecs, b.ecs);
  EXPECT_EQ(a.input_bytes, b.input_bytes);
  EXPECT_EQ(a.stored_data_bytes, b.stored_data_bytes);
  EXPECT_EQ(a.metadata.total_bytes(), b.metadata.total_bytes());
  EXPECT_EQ(a.counters.dup_bytes, b.counters.dup_bytes);
  EXPECT_EQ(a.counters.dup_slices, b.counters.dup_slices);
  EXPECT_EQ(a.counters.stored_chunks, b.counters.stored_chunks);
  EXPECT_EQ(a.stats.total_accesses(), b.stats.total_accesses());
}

TEST(ParallelRunner, MatchesSerialResults) {
  const Corpus corpus(test_preset(55));
  const auto specs = sweep_specs();

  std::vector<ExperimentResult> serial;
  for (const auto& s : specs) serial.push_back(run_experiment(s, corpus));

  const auto parallel = run_experiments(specs, corpus, 4);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_equivalent(parallel[i], serial[i]);
  }
}

TEST(ParallelRunner, SingleThreadPath) {
  const Corpus corpus(test_preset(56));
  const auto results = run_experiments(sweep_specs(), corpus, 1);
  ASSERT_EQ(results.size(), 4u);
  for (const auto& r : results) EXPECT_GT(r.input_bytes, 0u);
}

TEST(ParallelRunner, EmptySpecList) {
  const Corpus corpus(test_preset(57));
  EXPECT_TRUE(run_experiments({}, corpus).empty());
}

TEST(ParallelRunner, PropagatesFirstError) {
  const Corpus corpus(test_preset(58));
  auto specs = sweep_specs();
  specs[1].algorithm = "no-such-engine";
  EXPECT_THROW(run_experiments(specs, corpus, 2), std::invalid_argument);
}

TEST(MaxBlockPerHash, SectionIvFormulas) {
  EXPECT_EQ(max_block_per_hash_mhd(4096, 1000), 4096u * 999);
  EXPECT_EQ(max_block_per_hash_subchunk(4096, 1000), 4096u * 1000);
  EXPECT_EQ(max_block_per_hash_bimodal(4096, 1000), 4096u * 1000);
  EXPECT_EQ(max_block_per_hash_cdc(4096), 4096u);
}

}  // namespace
}  // namespace mhd
