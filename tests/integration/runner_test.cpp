#include "mhd/sim/runner.h"

#include <gtest/gtest.h>

#include "mhd/workload/presets.h"

namespace mhd {
namespace {

EngineConfig small_config() {
  EngineConfig cfg;
  cfg.ecs = 512;
  cfg.sd = 8;
  cfg.bloom_bytes = 64 * 1024;
  return cfg;
}

TEST(Runner, MakeEngineKnowsAllNames) {
  MemoryBackend backend;
  ObjectStore store(backend);
  for (const auto& name : engine_names()) {
    auto engine = make_engine(name, store, small_config());
    ASSERT_NE(engine, nullptr) << name;
    EXPECT_FALSE(engine->name().empty());
  }
}

TEST(Runner, MakeEngineRejectsUnknown) {
  MemoryBackend backend;
  ObjectStore store(backend);
  EXPECT_THROW(make_engine("nope", store, small_config()),
               std::invalid_argument);
}

TEST(Runner, BfMhdForcesBloom) {
  MemoryBackend backend;
  ObjectStore store(backend);
  EngineConfig cfg = small_config();
  cfg.use_bloom = false;
  auto engine = make_engine("bf-mhd", store, cfg);
  EXPECT_EQ(engine->name(), "BF-MHD");
  EXPECT_TRUE(engine->config().use_bloom);
}

// Every algorithm runs a corpus end-to-end with verification enabled.
class RunnerAllEnginesTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RunnerAllEnginesTest, VerifiedRunProducesSaneResult) {
  RunSpec spec;
  spec.algorithm = GetParam();
  spec.engine = small_config();
  spec.verify = true;
  const Corpus corpus(test_preset(42));
  const ExperimentResult r = run_experiment(spec, corpus);

  EXPECT_EQ(r.input_bytes, corpus.total_bytes());
  EXPECT_GT(r.stored_data_bytes, 0u);
  EXPECT_LE(r.stored_data_bytes, r.input_bytes);
  EXPECT_GT(r.data_only_der(), 1.0);
  EXPECT_GT(r.real_der(), 1.0);
  EXPECT_GT(r.metadata_ratio(), 0.0);
  EXPECT_GT(r.throughput_ratio(), 0.0);
  EXPECT_GT(r.counters.dup_slices, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, RunnerAllEnginesTest,
                         ::testing::ValuesIn(engine_names()));

TEST(Runner, MhdFindsComparableDuplicationWithLessMetadata) {
  const Corpus corpus(test_preset(43));
  RunSpec spec;
  spec.engine = small_config();

  spec.algorithm = "bf-mhd";
  const auto mhd = run_experiment(spec, corpus);
  spec.algorithm = "cdc";
  const auto cdc = run_experiment(spec, corpus);

  EXPECT_LT(mhd.metadata_ratio(), cdc.metadata_ratio());
  EXPECT_GT(mhd.counters.dup_bytes, cdc.counters.dup_bytes / 2);
  // The headline claim: best REAL DER for MHD on this workload shape.
  EXPECT_GT(mhd.real_der(), cdc.real_der());
}

}  // namespace
}  // namespace mhd
