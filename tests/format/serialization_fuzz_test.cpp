// Randomized round-trip fuzz for every wire format: arbitrary well-formed
// structures must serialize/deserialize losslessly, and truncations of
// valid wire bytes must never parse into something larger than the
// original (no buffer over-reads, no fabricated entries).
#include <gtest/gtest.h>

#include "mhd/format/file_manifest.h"
#include "mhd/format/manifest.h"
#include "mhd/format/recipe_codec.h"
#include "mhd/hash/sha1.h"
#include "mhd/util/random.h"

namespace mhd {
namespace {

Digest random_digest(Xoshiro256& rng) {
  ByteVec b(20);
  for (auto& x : b) x = static_cast<Byte>(rng());
  Digest d;
  std::copy(b.begin(), b.end(), d.bytes.begin());
  return d;
}

class SerializationFuzzTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SerializationFuzzTest, ManifestRoundTrip) {
  Xoshiro256 rng(GetParam());
  Manifest m(random_digest(rng));
  std::uint64_t off = 0;
  const int n = static_cast<int>(rng.below(50));
  for (int i = 0; i < n; ++i) {
    const std::uint32_t size = 1 + static_cast<std::uint32_t>(rng.below(100000));
    m.add({random_digest(rng), off, size,
           1 + static_cast<std::uint32_t>(rng.below(100)), rng.chance(0.2)});
    off += size;
  }
  for (const bool hook_flags : {true, false}) {
    const ByteVec wire = m.serialize(hook_flags);
    const auto back = Manifest::deserialize(wire);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->chunk_name(), m.chunk_name());
    if (hook_flags) {
      EXPECT_EQ(back->entries(), m.entries());
    } else {
      ASSERT_EQ(back->entries().size(), m.entries().size());
      for (std::size_t i = 0; i < m.entries().size(); ++i) {
        EXPECT_EQ(back->entries()[i].hash, m.entries()[i].hash);
        EXPECT_EQ(back->entries()[i].size, m.entries()[i].size);
      }
    }
    // Any truncation either fails or yields no more entries than written.
    for (int t = 0; t < 8; ++t) {
      const std::size_t cut = static_cast<std::size_t>(rng.below(wire.size() + 1));
      const auto trunc = Manifest::deserialize({wire.data(), cut});
      if (trunc) EXPECT_LE(trunc->entries().size(), m.entries().size());
    }
  }
}

TEST_P(SerializationFuzzTest, FileManifestAndRecipeRoundTrip) {
  Xoshiro256 rng(GetParam() ^ 0xF11E);
  FileManifest fm("fuzz-" + std::to_string(GetParam()));
  const int n = static_cast<int>(rng.below(80));
  for (int i = 0; i < n; ++i) {
    fm.add_range(random_digest(rng), rng.below(1ULL << 40),
                 1 + rng.below(1 << 20), rng.chance(0.5));
  }
  const auto back = FileManifest::deserialize(fm.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->entries(), fm.entries());
  EXPECT_EQ(back->file_name(), fm.file_name());

  const auto unpacked = decompress_recipe(compress_recipe(fm));
  ASSERT_TRUE(unpacked.has_value());
  EXPECT_EQ(unpacked->entries(), fm.entries());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializationFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace mhd
