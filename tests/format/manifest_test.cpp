#include "mhd/format/manifest.h"

#include <gtest/gtest.h>

#include "mhd/hash/sha1.h"

namespace mhd {
namespace {

Manifest sample_manifest() {
  Manifest m(Sha1::hash(as_bytes("chunkfile")));
  m.add({Sha1::hash(as_bytes("a")), 0, 512, 1, true});
  m.add({Sha1::hash(as_bytes("b")), 512, 4096, 9, false});
  m.add({Sha1::hash(as_bytes("c")), 4608, 128, 1, false});
  return m;
}

TEST(Manifest, FindLocatesEntry) {
  const Manifest m = sample_manifest();
  const auto idx = m.find(Sha1::hash(as_bytes("b")));
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(*idx, 1u);
  EXPECT_FALSE(m.find(Sha1::hash(as_bytes("zz"))).has_value());
}

TEST(Manifest, ByteSizeAccounting) {
  const Manifest m = sample_manifest();
  EXPECT_EQ(m.byte_size(false), 3 * 36u);
  EXPECT_EQ(m.byte_size(true), 3 * 37u);
}

TEST(Manifest, SerializeRoundTripWithHookFlags) {
  const Manifest m = sample_manifest();
  const ByteVec wire = m.serialize(true);
  const auto back = Manifest::deserialize(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->chunk_name(), m.chunk_name());
  EXPECT_EQ(back->entries(), m.entries());
}

TEST(Manifest, SerializeRoundTripWithoutHookFlags) {
  Manifest m(Sha1::hash(as_bytes("x")));
  m.add({Sha1::hash(as_bytes("e")), 0, 100, 1, false});
  const auto back = Manifest::deserialize(m.serialize(false));
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->entries().size(), 1u);
  EXPECT_EQ(back->entries()[0].hash, m.entries()[0].hash);
  EXPECT_EQ(back->entries()[0].size, 100u);
  // Hook flags default to false without the flag byte.
  EXPECT_FALSE(back->entries()[0].is_hook);
}

TEST(Manifest, DeserializeRejectsTruncated) {
  const ByteVec wire = sample_manifest().serialize(true);
  for (std::size_t cut : {std::size_t{0}, std::size_t{10}, std::size_t{24},
                          wire.size() - 1}) {
    EXPECT_FALSE(Manifest::deserialize({wire.data(), cut}).has_value())
        << "cut=" << cut;
  }
}

TEST(Manifest, RegionsContiguous) {
  EXPECT_TRUE(sample_manifest().regions_contiguous());
  Manifest gap(Sha1::hash(as_bytes("g")));
  gap.add({Sha1::hash(as_bytes("a")), 0, 100, 1, false});
  gap.add({Sha1::hash(as_bytes("b")), 150, 100, 1, false});  // hole
  EXPECT_FALSE(gap.regions_contiguous());
}

TEST(Manifest, DirtyFlag) {
  Manifest m;
  EXPECT_FALSE(m.dirty());
  m.set_dirty();
  EXPECT_TRUE(m.dirty());
  m.set_dirty(false);
  EXPECT_FALSE(m.dirty());
}

TEST(Manifest, EmptyManifestRoundTrip) {
  Manifest m(Sha1::hash(as_bytes("empty")));
  const auto back = Manifest::deserialize(m.serialize(true));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->entries().empty());
  EXPECT_TRUE(back->regions_contiguous());
}

}  // namespace
}  // namespace mhd
