#include "mhd/format/recipe_codec.h"

#include <gtest/gtest.h>

#include "mhd/hash/sha1.h"
#include "mhd/util/random.h"

namespace mhd {
namespace {

TEST(Varint, RoundTripsBoundaryValues) {
  for (std::uint64_t v :
       {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL, ~0ULL}) {
    ByteVec buf;
    put_varint(buf, v);
    std::size_t pos = 0;
    const auto back = get_varint(buf, pos);
    ASSERT_TRUE(back.has_value()) << v;
    EXPECT_EQ(*back, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(Varint, RejectsTruncated) {
  ByteVec buf;
  put_varint(buf, 1ULL << 40);
  buf.pop_back();
  std::size_t pos = 0;
  EXPECT_FALSE(get_varint(buf, pos).has_value());
}

TEST(ZigZag, RoundTripsSignedValues) {
  for (std::int64_t v :
       {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1},
        std::int64_t{1000}, std::int64_t{-1000}, std::int64_t{1} << 40,
        -(std::int64_t{1} << 40)}) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
}

FileManifest sequential_recipe(int entries) {
  FileManifest fm("vm/disk.img");
  const Digest chunk = Sha1::hash(as_bytes("chunkfile"));
  std::uint64_t off = 0;
  Xoshiro256 rng(3);
  for (int i = 0; i < entries; ++i) {
    const std::uint32_t len = 512 + static_cast<std::uint32_t>(rng.below(4096));
    fm.add_range(chunk, off, len, /*coalesce=*/false);
    off += len;
  }
  return fm;
}

TEST(RecipeCodec, RoundTripSequential) {
  const FileManifest fm = sequential_recipe(200);
  const auto back = decompress_recipe(compress_recipe(fm));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->file_name(), fm.file_name());
  EXPECT_EQ(back->entries(), fm.entries());
}

TEST(RecipeCodec, RoundTripMultiChunkRandomOffsets) {
  FileManifest fm("x");
  Xoshiro256 rng(5);
  std::vector<Digest> chunks;
  for (int i = 0; i < 5; ++i) {
    chunks.push_back(Sha1::hash(as_bytes("c" + std::to_string(i))));
  }
  for (int i = 0; i < 300; ++i) {
    fm.add_range(chunks[rng.below(5)], rng.below(1 << 30),
                 1 + static_cast<std::uint32_t>(rng.below(100000)), false);
  }
  const auto back = decompress_recipe(compress_recipe(fm));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->entries(), fm.entries());
}

TEST(RecipeCodec, CompressesSequentialRecipesWell) {
  const FileManifest fm = sequential_recipe(1000);
  const ByteVec compressed = compress_recipe(fm);
  // Plain serialization costs 32 B/entry; sequential recipes compress to a
  // few bytes per entry (dict id + delta 0 + length).
  EXPECT_LT(compressed.size(), fm.serialize().size() / 5);
}

TEST(RecipeCodec, EmptyRecipe) {
  FileManifest fm("empty");
  const auto back = decompress_recipe(compress_recipe(fm));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->entries().empty());
  EXPECT_EQ(back->file_name(), "empty");
}

TEST(RecipeCodec, RejectsCorruptInput) {
  const ByteVec compressed = compress_recipe(sequential_recipe(10));
  EXPECT_FALSE(decompress_recipe({compressed.data(), 2}).has_value());
  ByteVec corrupt = compressed;
  corrupt.resize(corrupt.size() / 2);
  // Either decodes to fewer entries or fails; must not crash. A decode
  // that "succeeds" with garbage entries is impossible because the entry
  // count is encoded up front.
  const auto r = decompress_recipe(corrupt);
  if (r.has_value()) {
    EXPECT_LT(r->entries().size(), 10u);
  }
}

}  // namespace
}  // namespace mhd
