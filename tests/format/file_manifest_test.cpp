#include "mhd/format/file_manifest.h"

#include <gtest/gtest.h>

#include "mhd/hash/sha1.h"

namespace mhd {
namespace {

TEST(FileManifest, CoalescesContiguousRanges) {
  FileManifest fm("pc1/day1.img");
  const Digest c = Sha1::hash(as_bytes("chunk"));
  fm.add_range(c, 0, 100, /*coalesce=*/true);
  fm.add_range(c, 100, 50, true);
  ASSERT_EQ(fm.entries().size(), 1u);
  EXPECT_EQ(fm.entries()[0].length, 150u);
  EXPECT_EQ(fm.total_length(), 150u);
}

TEST(FileManifest, NoCoalesceKeepsPerChunkEntries) {
  FileManifest fm("f");
  const Digest c = Sha1::hash(as_bytes("chunk"));
  fm.add_range(c, 0, 100, /*coalesce=*/false);
  fm.add_range(c, 100, 50, false);
  EXPECT_EQ(fm.entries().size(), 2u);
}

TEST(FileManifest, NonContiguousNeverCoalesces) {
  FileManifest fm("f");
  const Digest c = Sha1::hash(as_bytes("chunk"));
  fm.add_range(c, 0, 100, true);
  fm.add_range(c, 500, 50, true);  // gap
  EXPECT_EQ(fm.entries().size(), 2u);
}

TEST(FileManifest, DifferentChunksNeverCoalesce) {
  FileManifest fm("f");
  fm.add_range(Sha1::hash(as_bytes("a")), 0, 100, true);
  fm.add_range(Sha1::hash(as_bytes("b")), 100, 100, true);
  EXPECT_EQ(fm.entries().size(), 2u);
}

TEST(FileManifest, SplitsRangesBeyondU32) {
  FileManifest fm("f");
  const Digest c = Sha1::hash(as_bytes("huge"));
  const std::uint64_t big = (1ULL << 32) + 1000;
  fm.add_range(c, 0, big, false);
  EXPECT_GE(fm.entries().size(), 2u);
  EXPECT_EQ(fm.total_length(), big);
}

TEST(FileManifest, ByteSizeAccounting) {
  FileManifest fm("f");
  fm.add_range(Sha1::hash(as_bytes("a")), 0, 10, false);
  fm.add_range(Sha1::hash(as_bytes("b")), 0, 10, false);
  EXPECT_EQ(fm.byte_size(), 2 * FileManifestEntry::kBytes);
}

TEST(FileManifest, SerializeRoundTrip) {
  FileManifest fm("machine7/day3.img");
  fm.add_range(Sha1::hash(as_bytes("a")), 0, 100, true);
  fm.add_range(Sha1::hash(as_bytes("b")), 40, 9999, true);
  const auto back = FileManifest::deserialize(fm.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->file_name(), fm.file_name());
  EXPECT_EQ(back->entries(), fm.entries());
}

TEST(FileManifest, DeserializeRejectsTruncated) {
  FileManifest fm("name");
  fm.add_range(Sha1::hash(as_bytes("a")), 0, 100, true);
  const ByteVec wire = fm.serialize();
  EXPECT_FALSE(FileManifest::deserialize({wire.data(), 3}).has_value());
  EXPECT_FALSE(
      FileManifest::deserialize({wire.data(), wire.size() - 5}).has_value());
}

TEST(FileManifest, EmptyRoundTrip) {
  FileManifest fm("empty.img");
  const auto back = FileManifest::deserialize(fm.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->entries().empty());
  EXPECT_EQ(back->total_length(), 0u);
}

}  // namespace
}  // namespace mhd
