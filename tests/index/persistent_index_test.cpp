// PersistentIndex unit tests: durability of the on-disk fingerprint index
// itself, independent of any engine. Engines-level equivalence (warm
// restart, GC interaction) lives in warm_restart_test.cpp.
#include "mhd/index/persistent_index.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mhd/hash/sha1.h"
#include "mhd/index/mem_index.h"
#include "mhd/store/framed_backend.h"
#include "mhd/store/memory_backend.h"
#include "mhd/util/random.h"

namespace mhd {
namespace {

Digest digest_of(std::uint64_t n) {
  ByteVec v;
  append_le<std::uint64_t>(v, n);
  return Sha1::hash(v);
}

IndexEntry entry_of(std::uint64_t n) {
  return IndexEntry{digest_of(n * 31 + 7), n * 13};
}

PersistentIndexConfig small_config() {
  PersistentIndexConfig cfg;
  cfg.shards = 8;
  cfg.expected_keys = 4096;  // keeps the bloom small in tests
  cfg.journal_batch = 4;
  cfg.compact_threshold = 1 << 20;  // compaction only when asked
  return cfg;
}

void put_n(PersistentIndex& index, std::uint64_t n, std::uint64_t from = 0) {
  for (std::uint64_t i = from; i < from + n; ++i) {
    index.put(digest_of(i), entry_of(i));
  }
}

void expect_all(PersistentIndex& index, std::uint64_t n,
                std::uint64_t from = 0) {
  for (std::uint64_t i = from; i < from + n; ++i) {
    const auto hit = index.lookup(digest_of(i));
    ASSERT_TRUE(hit.has_value()) << "key " << i;
    EXPECT_EQ(hit->manifest, entry_of(i).manifest) << "key " << i;
    EXPECT_EQ(hit->offset, entry_of(i).offset) << "key " << i;
  }
}

TEST(PersistentIndex, PutLookupEraseRoundTrip) {
  MemoryBackend backend;
  PersistentIndex index(backend, small_config());
  EXPECT_EQ(index.entry_count(), 0u);
  put_n(index, 100);
  EXPECT_EQ(index.entry_count(), 100u);
  expect_all(index, 100);
  EXPECT_FALSE(index.lookup(digest_of(5000)).has_value());

  EXPECT_TRUE(index.erase(digest_of(7)));
  EXPECT_FALSE(index.erase(digest_of(7)));
  EXPECT_FALSE(index.lookup(digest_of(7)).has_value());
  EXPECT_EQ(index.entry_count(), 99u);
}

TEST(PersistentIndex, MaybeContainsHasNoFalseNegatives) {
  MemoryBackend backend;
  PersistentIndex index(backend, small_config());
  put_n(index, 500);
  for (std::uint64_t i = 0; i < 500; ++i) {
    EXPECT_TRUE(index.maybe_contains(digest_of(i))) << i;
  }
}

TEST(PersistentIndex, PresenceIsDetectedAfterFlush) {
  MemoryBackend backend;
  EXPECT_FALSE(PersistentIndex::present(backend));
  EXPECT_FALSE(index_present(backend));
  {
    PersistentIndex index(backend, small_config());
    // Even an empty index writes its meta, making the choice sticky.
    EXPECT_TRUE(PersistentIndex::present(backend));
  }
  EXPECT_TRUE(index_present(backend));
}

TEST(PersistentIndex, ReopenReplaysJournal) {
  MemoryBackend backend;
  {
    PersistentIndex index(backend, small_config());
    put_n(index, 50);
    index.erase(digest_of(3));
    index.flush();
    EXPECT_GT(index.journal_segment_count(), 0u);
    EXPECT_EQ(index.compaction_count(), 0u);
  }
  PersistentIndex reopened(backend, small_config());
  EXPECT_EQ(reopened.entry_count(), 49u);
  expect_all(reopened, 2);  // keys 0,1
  EXPECT_FALSE(reopened.lookup(digest_of(3)).has_value());
  expect_all(reopened, 46, 4);
}

TEST(PersistentIndex, ReopenAfterCompactionReadsPages) {
  MemoryBackend backend;
  {
    PersistentIndex index(backend, small_config());
    put_n(index, 300);
    index.compact();
    EXPECT_EQ(index.compaction_count(), 1u);
    put_n(index, 40, 300);  // a post-compaction journal tail on top
    index.flush();
  }
  PersistentIndex reopened(backend, small_config());
  EXPECT_EQ(reopened.entry_count(), 340u);
  expect_all(reopened, 340);
}

TEST(PersistentIndex, RepeatedCompactionsSupersedeGenerations) {
  MemoryBackend backend;
  PersistentIndex index(backend, small_config());
  for (int round = 0; round < 4; ++round) {
    put_n(index, 50, static_cast<std::uint64_t>(round) * 50);
    index.compact();
  }
  EXPECT_EQ(index.compaction_count(), 4u);
  EXPECT_EQ(index.entry_count(), 200u);
  expect_all(index, 200);
  // Old generations and consumed journal segments are removed: at most
  // one live page per shard plus meta/bloom/warm-style singletons.
  EXPECT_LE(backend.object_count(Ns::kIndex), 8u + 3u);
}

TEST(PersistentIndex, NoOpPutsDoNotGrowTheJournal) {
  MemoryBackend backend;
  PersistentIndex index(backend, small_config());
  put_n(index, 20);
  index.flush();
  const auto segments = index.journal_segment_count();
  put_n(index, 20);  // identical (fp, entry) pairs: pure no-ops
  index.flush();
  EXPECT_EQ(index.journal_segment_count(), segments);
  EXPECT_EQ(index.entry_count(), 20u);
}

TEST(PersistentIndex, TornJournalTailIsTruncatedNotFatal) {
  MemoryBackend backend;
  std::vector<std::string> segments;
  {
    PersistentIndex index(backend, small_config());
    put_n(index, 48);  // batch=4 -> 12 journal segments
    index.flush();
    for (const auto& name : backend.list(Ns::kIndex)) {
      if (name.rfind("journal-", 0) == 0) segments.push_back(name);
    }
    ASSERT_GE(segments.size(), 3u);
  }
  // Tear the second-to-last segment in half, below all framing.
  std::sort(segments.begin(), segments.end(),
            [](const std::string& a, const std::string& b) {
              return std::stoull(a.substr(8)) < std::stoull(b.substr(8));
            });
  const std::string& torn = segments[segments.size() - 2];
  const auto bytes = backend.get(Ns::kIndex, torn);
  ASSERT_TRUE(bytes.has_value());
  backend.put(Ns::kIndex, torn,
              ByteSpan{bytes->data(), bytes->size() / 2});

  PersistentIndex reopened(backend, small_config());
  // Everything before the tear replayed; the tear and all later segments
  // were dropped (a journal suffix, never a hole in the middle).
  EXPECT_EQ(reopened.entry_count(), (segments.size() - 2) * 4);
  expect_all(reopened, reopened.entry_count());
  // The truncated tail is advisory loss only: new puts go on cleanly and
  // survive the next reopen.
  put_n(reopened, 48, 1000);
  reopened.flush();
  PersistentIndex again(backend, small_config());
  expect_all(again, 48, 1000);
}

TEST(PersistentIndex, CorruptBucketPageDegradesToMissedDuplicates) {
  MemoryBackend backend;
  {
    PersistentIndex index(backend, small_config());
    put_n(index, 200);
    index.compact();
    index.flush();
  }
  // Flip a byte in the middle of one shard page, below the framing.
  std::string victim;
  for (const auto& name : backend.list(Ns::kIndex)) {
    if (name.rfind("shard-", 0) == 0) {
      victim = name;
      break;
    }
  }
  ASSERT_FALSE(victim.empty());
  auto bytes = backend.get(Ns::kIndex, victim);
  ASSERT_TRUE(bytes.has_value());
  (*bytes)[bytes->size() / 2] ^= Byte{0x40};
  backend.put(Ns::kIndex, victim, *bytes);

  PersistentIndex reopened(backend, small_config());
  std::uint64_t hits = 0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    hits += reopened.lookup(digest_of(i)).has_value() ? 1 : 0;
  }
  EXPECT_LT(hits, 200u);               // the bad page's entries are gone...
  EXPECT_GT(hits, 0u);                 // ...but only that page's
  EXPECT_GT(reopened.corrupt_page_reads(), 0u);
}

TEST(PersistentIndex, MissingMetaRebuildsFromHooks) {
  MemoryBackend backend;
  // An authoritative hooks namespace: hook name = fingerprint hex,
  // payload = owning manifest digest (as every engine writes them).
  for (std::uint64_t i = 0; i < 30; ++i) {
    backend.put(Ns::kHook, digest_of(i).hex(), entry_of(i).manifest.span());
  }
  // Index objects exist but the meta (commit point) never landed — the
  // crash window of a torn compaction.
  backend.put(Ns::kIndex, "journal-0", as_bytes("garbage"));

  PersistentIndex index(backend, small_config());
  EXPECT_EQ(index.entry_count(), 30u);
  for (std::uint64_t i = 0; i < 30; ++i) {
    const auto hit = index.lookup(digest_of(i));
    ASSERT_TRUE(hit.has_value()) << i;
    EXPECT_EQ(hit->manifest, entry_of(i).manifest);
    EXPECT_EQ(hit->offset, 0u);  // offsets degrade to 0 on a rebuild
  }
}

TEST(PersistentIndex, PageCacheStaysWithinBudget) {
  PersistentIndexConfig cfg = small_config();
  cfg.shards = 64;
  cfg.cache_bytes = 16 << 10;  // holds only a few of the 64 pages
  MemoryBackend backend;
  {
    PersistentIndex index(backend, cfg);
    put_n(index, 4000);
    index.compact();
    index.flush();
  }
  PersistentIndex index(backend, cfg);
  Xoshiro256 rng(9);
  for (int i = 0; i < 2000; ++i) {  // random probes churn pages through
    index.lookup(digest_of(rng() % 4000));
  }
  expect_all(index, 4000);
  EXPECT_LE(index.page_cache_ram_high_water(), index.page_cache_budget());
  EXPECT_GE(index.ram_high_water(), index.page_cache_ram_high_water());
  EXPECT_GT(index.ram_bytes(), 0u);
}

TEST(PersistentIndex, ReopenAdoptsPersistedGeometry) {
  PersistentIndexConfig cfg = small_config();
  cfg.shards = 16;
  MemoryBackend backend;
  {
    PersistentIndex index(backend, cfg);
    put_n(index, 100);
    index.compact();
    index.flush();
  }
  // Reopening with a different shard count must keep the on-disk layout.
  PersistentIndexConfig other = small_config();
  other.shards = 4;
  PersistentIndex reopened(backend, other);
  EXPECT_EQ(reopened.entry_count(), 100u);
  expect_all(reopened, 100);
}

TEST(PersistentIndex, WarmListAndAuxBlobsRoundTrip) {
  MemoryBackend backend;
  std::vector<Digest> names = {digest_of(1), digest_of(2), digest_of(3)};
  ByteVec sketch = to_vec(as_bytes("frequency-sketch-payload"));
  {
    PersistentIndex index(backend, small_config());
    index.save_warm_list(names);
    index.save_aux("fbc-frequency", sketch);
  }
  PersistentIndex reopened(backend, small_config());
  EXPECT_EQ(reopened.load_warm_list(), names);
  const auto aux = reopened.load_aux("fbc-frequency");
  ASSERT_TRUE(aux.has_value());
  EXPECT_TRUE(equal(*aux, sketch));
  EXPECT_FALSE(reopened.load_aux("never-written").has_value());
}

TEST(PersistentIndex, WorksIdenticallyUnderFramedBackend) {
  MemoryBackend raw;
  {
    FramedBackend framed(raw);
    PersistentIndex index(framed, small_config());
    put_n(index, 120);
    index.compact();
    put_n(index, 30, 120);
    index.flush();
  }
  FramedBackend framed(raw);
  PersistentIndex reopened(framed, small_config());
  EXPECT_EQ(reopened.entry_count(), 150u);
  expect_all(reopened, 150);
  // check_index sees through both the raw and the framed view.
  EXPECT_EQ(check_index(raw).entries, 150u);
  EXPECT_EQ(check_index(framed).entries, 150u);
}

TEST(PersistentIndex, CheckIndexFlagsStaleEntriesAndRebuildClears) {
  MemoryBackend backend;
  for (std::uint64_t i = 0; i < 20; ++i) {
    backend.put(Ns::kHook, digest_of(i).hex(), entry_of(i).manifest.span());
    backend.put(Ns::kManifest, entry_of(i).manifest.hex(),
                as_bytes("opaque manifest"));
  }
  {
    PersistentIndex index(backend, small_config());
    put_n(index, 20);
    index.flush();
  }
  auto report = check_index(backend);
  EXPECT_TRUE(report.meta_ok);
  EXPECT_EQ(report.entries, 20u);
  EXPECT_EQ(report.stale_entries, 0u);

  // Delete a manifest out-of-band: its index entries (and hook) are stale.
  backend.remove(Ns::kManifest, entry_of(4).manifest.hex());
  backend.remove(Ns::kHook, digest_of(4).hex());
  report = check_index(backend);
  EXPECT_EQ(report.stale_entries, 1u);

  rebuild_index(backend, small_config());
  report = check_index(backend);
  EXPECT_TRUE(report.meta_ok);
  EXPECT_EQ(report.entries, 19u);
  EXPECT_EQ(report.stale_entries, 0u);
  EXPECT_EQ(report.unindexed_hooks, 0u);

  PersistentIndex reopened(backend, small_config());
  EXPECT_FALSE(reopened.lookup(digest_of(4)).has_value());
  EXPECT_TRUE(reopened.lookup(digest_of(5)).has_value());
}

TEST(MemIndex, MatchesPersistentIndexSemantics) {
  MemIndex mem;
  MemoryBackend backend;
  PersistentIndex disk(backend, small_config());
  Xoshiro256 rng(17);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t key = rng() % 300;
    const Digest fp = digest_of(key);
    switch (rng() % 3) {
      case 0: {
        const IndexEntry e = entry_of(rng() % 50);
        mem.put(fp, e);
        disk.put(fp, e);
        break;
      }
      case 1:
        EXPECT_EQ(mem.erase(fp), disk.erase(fp)) << "step " << i;
        break;
      default: {
        const auto a = mem.lookup(fp);
        const auto b = disk.lookup(fp);
        ASSERT_EQ(a.has_value(), b.has_value()) << "step " << i;
        if (a) {
          EXPECT_EQ(a->manifest, b->manifest);
          EXPECT_EQ(a->offset, b->offset);
        }
        break;
      }
    }
    EXPECT_EQ(mem.entry_count(), disk.entry_count()) << "step " << i;
  }
}

}  // namespace
}  // namespace mhd
