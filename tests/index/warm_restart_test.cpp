// Engine-level acceptance for the persistent fingerprint index.
//
// The headline property: ingesting generation 1, closing the process, and
// reopening with --index-impl=disk for generation 2 produces bit-identical
// stored objects and dedup counters to one uninterrupted in-RAM run —
// the warm restart restores the manifest-cache residency and the index
// restores every learned fingerprint, so nothing is re-discovered the
// expensive way. Also pinned here: the disk index's RAM stays within its
// configured page-cache budget, and GC leaves no index entry behind that
// could resurrect a swept manifest.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mhd/index/persistent_index.h"
#include "mhd/sim/runner.h"
#include "mhd/store/maintenance.h"
#include "mhd/store/memory_backend.h"
#include "mhd/workload/presets.h"

namespace mhd {
namespace {

CorpusConfig two_generation_corpus() {
  CorpusConfig c = test_preset(73);
  c.machines = 2;
  c.snapshots = 3;
  return c;
}

EngineConfig engine_config(IndexImpl impl) {
  EngineConfig cfg;
  cfg.ecs = 1024;
  cfg.sd = 8;
  cfg.bloom_bytes = 64 * 1024;
  cfg.manifest_cache_bytes = 32 << 10;  // small enough to see evictions
  cfg.index_impl = impl;
  cfg.index_cache_bytes = 256 << 10;
  // Shrunk geometry so a test-sized corpus exercises journal segment
  // rollover AND compaction, not just the in-RAM delta.
  cfg.index_shards = 8;
  cfg.index_journal_batch = 8;
  cfg.index_compact_threshold = 64;
  return cfg;
}

/// Ingests corpus files [first, last) through one fresh engine instance,
/// then destroys it (the close). Returns (counters, manifest_loads).
std::pair<EngineCounters, std::uint64_t> ingest_range(
    const std::string& engine_name, IndexImpl impl, const Corpus& corpus,
    std::size_t first, std::size_t last, StorageBackend& backend) {
  ObjectStore store(backend);
  auto engine = make_engine(engine_name, store, engine_config(impl));
  for (std::size_t i = first; i < last; ++i) {
    auto src = corpus.open(i);
    engine->add_file(corpus.files()[i].name, *src);
  }
  engine->finish();
  return {engine->counters(), engine->manifest_loads()};
}

void expect_namespace_identical(const StorageBackend& a,
                                const StorageBackend& b, Ns ns) {
  auto names_a = a.list(ns);
  auto names_b = b.list(ns);
  std::sort(names_a.begin(), names_a.end());
  std::sort(names_b.begin(), names_b.end());
  ASSERT_EQ(names_a, names_b) << ns_name(ns);
  for (const auto& name : names_a) {
    const auto bytes_a = a.get(ns, name);
    const auto bytes_b = b.get(ns, name);
    ASSERT_TRUE(bytes_a.has_value() && bytes_b.has_value());
    EXPECT_TRUE(equal(*bytes_a, *bytes_b)) << ns_name(ns) << "/" << name;
  }
}

void expect_counters_equal(const EngineCounters& a, const EngineCounters& b) {
  EXPECT_EQ(a.input_bytes, b.input_bytes);
  EXPECT_EQ(a.input_files, b.input_files);
  EXPECT_EQ(a.input_chunks, b.input_chunks);
  EXPECT_EQ(a.dup_chunks, b.dup_chunks);
  EXPECT_EQ(a.dup_bytes, b.dup_bytes);
  EXPECT_EQ(a.dup_slices, b.dup_slices);
  EXPECT_EQ(a.stored_chunks, b.stored_chunks);
  EXPECT_EQ(a.files_with_data, b.files_with_data);
  EXPECT_EQ(a.hhr_operations, b.hhr_operations);
  EXPECT_EQ(a.hhr_chunk_reloads, b.hhr_chunk_reloads);
  EXPECT_EQ(a.shm_merged_hashes, b.shm_merged_hashes);
  EXPECT_EQ(a.corruption_fallbacks, b.corruption_fallbacks);
}

EngineCounters sum(const EngineCounters& a, const EngineCounters& b) {
  EngineCounters s;
  s.input_bytes = a.input_bytes + b.input_bytes;
  s.input_files = a.input_files + b.input_files;
  s.input_chunks = a.input_chunks + b.input_chunks;
  s.dup_chunks = a.dup_chunks + b.dup_chunks;
  s.dup_bytes = a.dup_bytes + b.dup_bytes;
  s.dup_slices = a.dup_slices + b.dup_slices;
  s.stored_chunks = a.stored_chunks + b.stored_chunks;
  s.files_with_data = a.files_with_data + b.files_with_data;
  s.hhr_operations = a.hhr_operations + b.hhr_operations;
  s.hhr_chunk_reloads = a.hhr_chunk_reloads + b.hhr_chunk_reloads;
  s.shm_merged_hashes = a.shm_merged_hashes + b.shm_merged_hashes;
  s.corruption_fallbacks = a.corruption_fallbacks + b.corruption_fallbacks;
  return s;
}

class WarmRestartTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WarmRestartTest, ReopenedDiskIndexMatchesUninterruptedMemRun) {
  const std::string engine_name = GetParam();
  const Corpus corpus(two_generation_corpus());
  const std::size_t split = corpus.files().size() / 2;
  ASSERT_GT(split, 0u);

  // Run A: one uninterrupted engine with the historical in-RAM index.
  MemoryBackend mem_backend;
  const auto [mem_counters, mem_loads] =
      ingest_range(engine_name, IndexImpl::kMem, corpus, 0,
                   corpus.files().size(), mem_backend);

  // Run B: disk index, with a full process close between the generations.
  MemoryBackend disk_backend;
  const auto [gen1_counters, gen1_loads] = ingest_range(
      engine_name, IndexImpl::kDisk, corpus, 0, split, disk_backend);
  ASSERT_TRUE(index_present(disk_backend));
  const auto [gen2_counters, gen2_loads] =
      ingest_range(engine_name, IndexImpl::kDisk, corpus, split,
                   corpus.files().size(), disk_backend);

  // Identical user-visible stores: every data/metadata object bit-equal
  // (the index namespace is the disk run's private addition).
  for (const Ns ns : {Ns::kDiskChunk, Ns::kHook, Ns::kManifest,
                      Ns::kFileManifest}) {
    expect_namespace_identical(mem_backend, disk_backend, ns);
  }
  // Identical dedup decisions, including across the restart boundary.
  expect_counters_equal(mem_counters, sum(gen1_counters, gen2_counters));
  // The warm restart makes even the cache behavior equivalent: the
  // reopened run loads no manifest the uninterrupted run didn't.
  EXPECT_EQ(mem_loads, gen1_loads + gen2_loads);

  // The disk side is self-consistent on top of being equivalent.
  const auto report = check_index(disk_backend);
  EXPECT_TRUE(report.meta_ok);
  EXPECT_EQ(report.stale_entries, 0u);
  EXPECT_EQ(report.corrupt_objects, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    IndexedEngines, WarmRestartTest,
    testing::Values("mhd", "bf-mhd", "cdc", "bimodal", "fbc"),
    [](const testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

TEST(DiskIndexBudget, PageCacheHighWaterStaysWithinConfiguredBudget) {
  const Corpus corpus(two_generation_corpus());
  MemoryBackend backend;
  ObjectStore store(backend);
  EngineConfig cfg = engine_config(IndexImpl::kDisk);
  cfg.index_cache_bytes = 8 << 10;  // deliberately tiny: force churn
  cfg.index_shards = 64;
  auto engine = make_engine("bf-mhd", store, cfg);
  for (std::size_t i = 0; i < corpus.files().size(); ++i) {
    auto src = corpus.open(i);
    engine->add_file(corpus.files()[i].name, *src);
  }
  engine->finish();

  const auto* index =
      dynamic_cast<const PersistentIndex*>(engine->fingerprint_index());
  ASSERT_NE(index, nullptr);
  EXPECT_GT(index->entry_count(), 0u);
  EXPECT_LE(index->page_cache_ram_high_water(), index->page_cache_budget());
  // The reported RAM high-water covers at least the bounded page cache.
  EXPECT_GE(engine->index_ram_bytes(), index->page_cache_ram_high_water());
}

TEST(GcIndexInteraction, SweptManifestsDoNotResurrectAfterReopen) {
  const Corpus corpus(two_generation_corpus());
  MemoryBackend backend;
  ingest_range("bf-mhd", IndexImpl::kDisk, corpus, 0, corpus.files().size(),
               backend);
  ASSERT_EQ(check_index(backend).stale_entries, 0u);

  // Forget every snapshot, then sweep: cross-snapshot sharing would keep
  // a partially-deleted repository's manifests alive, and this test needs
  // manifests to actually disappear.
  std::vector<std::size_t> deleted;
  for (std::size_t i = 0; i < corpus.files().size(); ++i) {
    ASSERT_TRUE(delete_file(backend, corpus.files()[i].name));
    deleted.push_back(i);
  }
  const GcReport gc = collect_garbage(backend);
  EXPECT_TRUE(gc.index_rebuilt);
  EXPECT_GT(gc.deleted_manifests, 0u);
  EXPECT_GT(gc.dropped_index_entries, 0u);

  // No index entry may survive pointing at a swept manifest — that entry
  // could hand a reopened engine a dangling duplicate reference.
  const auto after_gc = check_index(backend);
  EXPECT_TRUE(after_gc.meta_ok);
  EXPECT_EQ(after_gc.stale_entries, 0u);
  EXPECT_EQ(after_gc.entries, gc.index_entries);

  // Reopen and re-ingest the deleted files: the index must re-learn them
  // (not "remember" them), and every file must restore byte-exactly.
  ObjectStore store(backend);
  auto engine = make_engine("bf-mhd", store, engine_config(IndexImpl::kDisk));
  for (const std::size_t i : deleted) {
    auto src = corpus.open(i);
    engine->add_file(corpus.files()[i].name, *src);
  }
  engine->finish();
  for (std::size_t i = 0; i < corpus.files().size(); ++i) {
    auto src = corpus.open(i);
    const ByteVec original = read_all(*src);
    const auto restored = engine->reconstruct(corpus.files()[i].name);
    ASSERT_TRUE(restored.has_value()) << corpus.files()[i].name;
    ASSERT_TRUE(equal(*restored, original)) << corpus.files()[i].name;
  }
  const auto final_report = check_index(backend);
  EXPECT_TRUE(final_report.meta_ok);
  EXPECT_EQ(final_report.stale_entries, 0u);
  const auto scrub = scrub_repository(backend);
  EXPECT_TRUE(scrub.clean());
}

}  // namespace
}  // namespace mhd
