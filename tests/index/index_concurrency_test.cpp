// PersistentIndex under concurrency: parallel writers and readers over
// the sharded-mutex index, group-committed journal appends batching
// across sessions, concurrent compaction, and reopen (crash-recovery)
// equivalence of the concurrently-built state.
//
// Runs in the server-labelled suite so the TSan preset exercises the
// index's locking hierarchy (struct_mu_ > shard > bloom/cache/journal).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "mhd/hash/sha1.h"
#include "mhd/index/persistent_index.h"
#include "mhd/store/memory_backend.h"
#include "mhd/store/sync_backend.h"

namespace mhd {
namespace {

Digest key_of(int writer, int i) {
  const std::string s =
      "key-" + std::to_string(writer) + "-" + std::to_string(i);
  return Sha1::hash(as_bytes(s));
}

IndexEntry entry_of(int writer, int i) {
  IndexEntry e;
  e.manifest = Sha1::hash(as_bytes("manifest-" + std::to_string(writer)));
  e.offset = static_cast<std::uint64_t>(i);
  e.container = static_cast<std::uint64_t>(writer);
  return e;
}

constexpr int kWriters = 4;
constexpr int kKeysPerWriter = 300;

void hammer(PersistentIndex& index) {
  std::atomic<bool> done{false};
  // Readers race the writers across the whole keyspace: lookups must
  // return either "absent" or the exact entry, never garbage.
  std::vector<std::thread> readers;
  std::atomic<int> bad_reads{0};
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!done.load()) {
        for (int w = 0; w < kWriters; ++w) {
          for (int i = 0; i < kKeysPerWriter; i += 17) {
            const auto hit = index.lookup(key_of(w, i));
            if (hit && (hit->offset != static_cast<std::uint64_t>(i) ||
                        hit->container != static_cast<std::uint64_t>(w))) {
              ++bad_reads;
            }
            index.maybe_contains(key_of(w, i));
          }
        }
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kKeysPerWriter; ++i) {
        index.put(key_of(w, i), entry_of(w, i));
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(bad_reads.load(), 0);
}

void expect_all_present(FingerprintIndex& index) {
  EXPECT_EQ(index.entry_count(),
            static_cast<std::uint64_t>(kWriters * kKeysPerWriter));
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kKeysPerWriter; ++i) {
      const auto hit = index.lookup(key_of(w, i));
      ASSERT_TRUE(hit) << "writer " << w << " key " << i;
      EXPECT_EQ(hit->manifest, entry_of(w, i).manifest);
      EXPECT_EQ(hit->offset, static_cast<std::uint64_t>(i));
      EXPECT_EQ(hit->container, static_cast<std::uint64_t>(w));
    }
  }
}

TEST(IndexConcurrency, ParallelPutsAndLookupsAllLand) {
  MemoryBackend mem;
  SyncBackend sync(mem);  // MemoryBackend itself is not thread-safe
  PersistentIndexConfig cfg;
  cfg.shards = 8;
  cfg.journal_batch = 32;
  cfg.compact_threshold = 1u << 20;  // never compacts during the run
  PersistentIndex index(sync, cfg);

  hammer(index);
  expect_all_present(index);
}

TEST(IndexConcurrency, GroupCommitBatchesAppendsAcrossSessions) {
  MemoryBackend mem;
  SyncBackend sync(mem);
  PersistentIndexConfig cfg;
  cfg.shards = 8;
  cfg.journal_batch = 32;
  cfg.compact_threshold = 1u << 20;
  PersistentIndex index(sync, cfg);

  hammer(index);
  index.flush();  // seals the final partial batch

  // Every put was a fresh key: one journal record each, group-committed
  // into ceil(records / batch) segment objects regardless of which
  // session's append crossed the window boundary.
  const std::uint64_t records = index.journal_records_appended();
  const std::uint64_t segments = index.journal_segments_written();
  EXPECT_EQ(records,
            static_cast<std::uint64_t>(kWriters * kKeysPerWriter));
  EXPECT_EQ(segments, (records + cfg.journal_batch - 1) / cfg.journal_batch);
  EXPECT_GE(records / segments, cfg.journal_batch - 1);
}

TEST(IndexConcurrency, CompactionRacingWritersStaysConsistent) {
  MemoryBackend mem;
  SyncBackend sync(mem);
  PersistentIndexConfig cfg;
  cfg.shards = 8;
  cfg.journal_batch = 16;
  cfg.compact_threshold = 256;  // forces folds mid-hammer
  PersistentIndex index(sync, cfg);

  hammer(index);
  EXPECT_GE(index.compaction_count(), 1u);
  expect_all_present(index);
}

TEST(IndexConcurrency, FlushedConcurrentStateSurvivesReopenInFull) {
  MemoryBackend mem;
  PersistentIndexConfig cfg;
  cfg.shards = 8;
  cfg.journal_batch = 16;
  cfg.compact_threshold = 256;
  {
    SyncBackend sync(mem);
    PersistentIndex index(sync, cfg);
    hammer(index);
    index.flush();
  }
  PersistentIndex reopened(mem, cfg);
  expect_all_present(reopened);
}

TEST(IndexConcurrency, UnflushedCloseLosesAtMostOneCommitWindow) {
  MemoryBackend mem;
  PersistentIndexConfig cfg;
  cfg.shards = 8;
  cfg.journal_batch = 16;
  cfg.compact_threshold = 256;
  {
    SyncBackend sync(mem);
    PersistentIndex index(sync, cfg);
    hammer(index);
    // No flush: crash-equivalent close by contract. Recovery rebuilds
    // from pages + sealed journal segments; only the in-RAM tail of the
    // group-commit window (< journal_batch records) may be lost.
  }
  PersistentIndex reopened(mem, cfg);
  const std::uint64_t total =
      static_cast<std::uint64_t>(kWriters * kKeysPerWriter);
  EXPECT_LE(reopened.entry_count(), total);
  EXPECT_GE(reopened.entry_count(), total - (cfg.journal_batch - 1));
  // Whatever survived is exact — a recovered entry is never garbled.
  std::uint64_t hits = 0;
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kKeysPerWriter; ++i) {
      const auto hit = reopened.lookup(key_of(w, i));
      if (!hit) continue;
      ++hits;
      EXPECT_EQ(hit->manifest, entry_of(w, i).manifest);
      EXPECT_EQ(hit->offset, static_cast<std::uint64_t>(i));
      EXPECT_EQ(hit->container, static_cast<std::uint64_t>(w));
    }
  }
  EXPECT_EQ(hits, reopened.entry_count());
}

}  // namespace
}  // namespace mhd
