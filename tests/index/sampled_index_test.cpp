// Engine-level acceptance for the sampled similarity index tier
// (--index-impl=sampled).
//
// The tier trades dedup completeness for RAM: only sampled fingerprints
// (hooks) survive cache eviction, so some duplicates are stored again.
// What these tests pin:
//
//  * every file restores byte-exactly no matter how much the tier misses
//    (loss is a ratio cost, never a correctness cost);
//  * the loss is bounded and MEASURED — the gap between an exact in-RAM
//    run and the sampled run stays under a declared bound per sample
//    rate, and the tier's own loss meter reports a nonzero miss count
//    whenever a gap exists;
//  * a warm restart of the sampled tier is bit-identical to an
//    uninterrupted run on every user-visible namespace;
//  * a torn shadow-page commit (state or meta) is found by fsck, repaired
//    by rebuilding from the hooks namespace, and the repository ingests
//    and restores correctly afterwards;
//  * GC rebuilds the hook table so swept manifests cannot resurrect via
//    stale champion references;
//  * the sampled tier and the disk index coexist under Ns::kIndex —
//    rebuilding either one spares the other.
#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "mhd/index/persistent_index.h"
#include "mhd/index/sampled_index.h"
#include "mhd/sim/runner.h"
#include "mhd/store/fault_backend.h"
#include "mhd/store/framed_backend.h"
#include "mhd/store/maintenance.h"
#include "mhd/store/memory_backend.h"
#include "mhd/store/scrub.h"
#include "mhd/workload/presets.h"

namespace mhd {
namespace {

CorpusConfig sampled_corpus() {
  CorpusConfig c = test_preset(73);
  c.machines = 2;
  c.snapshots = 3;
  return c;
}

EngineConfig engine_config(IndexImpl impl, std::uint32_t sample_bits = 4) {
  EngineConfig cfg;
  cfg.ecs = 1024;
  cfg.sd = 8;
  cfg.bloom_bytes = 64 * 1024;
  cfg.manifest_cache_bytes = 32 << 10;  // small enough to force evictions
  cfg.index_impl = impl;
  cfg.index_cache_bytes = 256 << 10;
  cfg.index_shards = 8;
  cfg.index_journal_batch = 8;
  cfg.index_compact_threshold = 64;
  cfg.sample_bits = sample_bits;
  return cfg;
}

/// Ingests corpus files [first, last) through one fresh engine instance,
/// then destroys it (the close). Returns (counters, manifest_loads).
std::pair<EngineCounters, std::uint64_t> ingest_range(
    const std::string& engine_name, const EngineConfig& cfg,
    const Corpus& corpus, std::size_t first, std::size_t last,
    StorageBackend& backend) {
  ObjectStore store(backend);
  auto engine = make_engine(engine_name, store, cfg);
  for (std::size_t i = first; i < last; ++i) {
    auto src = corpus.open(i);
    engine->add_file(corpus.files()[i].name, *src);
  }
  engine->finish();
  return {engine->counters(), engine->manifest_loads()};
}

void expect_all_restores_byte_exact(const std::string& engine_name,
                                    const EngineConfig& cfg,
                                    const Corpus& corpus,
                                    StorageBackend& backend) {
  ObjectStore store(backend);
  auto engine = make_engine(engine_name, store, cfg);
  for (std::size_t i = 0; i < corpus.files().size(); ++i) {
    auto src = corpus.open(i);
    const ByteVec original = read_all(*src);
    const auto restored = engine->reconstruct(corpus.files()[i].name);
    ASSERT_TRUE(restored.has_value()) << corpus.files()[i].name;
    ASSERT_TRUE(equal(*restored, original)) << corpus.files()[i].name;
  }
}

void expect_namespace_identical(const StorageBackend& a,
                                const StorageBackend& b, Ns ns) {
  auto names_a = a.list(ns);
  auto names_b = b.list(ns);
  std::sort(names_a.begin(), names_a.end());
  std::sort(names_b.begin(), names_b.end());
  ASSERT_EQ(names_a, names_b) << ns_name(ns);
  for (const auto& name : names_a) {
    const auto bytes_a = a.get(ns, name);
    const auto bytes_b = b.get(ns, name);
    ASSERT_TRUE(bytes_a.has_value() && bytes_b.has_value());
    EXPECT_TRUE(equal(*bytes_a, *bytes_b)) << ns_name(ns) << "/" << name;
  }
}

void expect_counters_equal(const EngineCounters& a, const EngineCounters& b) {
  EXPECT_EQ(a.input_bytes, b.input_bytes);
  EXPECT_EQ(a.input_files, b.input_files);
  EXPECT_EQ(a.input_chunks, b.input_chunks);
  EXPECT_EQ(a.dup_chunks, b.dup_chunks);
  EXPECT_EQ(a.dup_bytes, b.dup_bytes);
  EXPECT_EQ(a.dup_slices, b.dup_slices);
  EXPECT_EQ(a.stored_chunks, b.stored_chunks);
  EXPECT_EQ(a.files_with_data, b.files_with_data);
  EXPECT_EQ(a.hhr_operations, b.hhr_operations);
  EXPECT_EQ(a.hhr_chunk_reloads, b.hhr_chunk_reloads);
  EXPECT_EQ(a.shm_merged_hashes, b.shm_merged_hashes);
  EXPECT_EQ(a.corruption_fallbacks, b.corruption_fallbacks);
}

EngineCounters sum(const EngineCounters& a, const EngineCounters& b) {
  EngineCounters s;
  s.input_bytes = a.input_bytes + b.input_bytes;
  s.input_files = a.input_files + b.input_files;
  s.input_chunks = a.input_chunks + b.input_chunks;
  s.dup_chunks = a.dup_chunks + b.dup_chunks;
  s.dup_bytes = a.dup_bytes + b.dup_bytes;
  s.dup_slices = a.dup_slices + b.dup_slices;
  s.stored_chunks = a.stored_chunks + b.stored_chunks;
  s.files_with_data = a.files_with_data + b.files_with_data;
  s.hhr_operations = a.hhr_operations + b.hhr_operations;
  s.hhr_chunk_reloads = a.hhr_chunk_reloads + b.hhr_chunk_reloads;
  s.shm_merged_hashes = a.shm_merged_hashes + b.shm_merged_hashes;
  s.corruption_fallbacks = a.corruption_fallbacks + b.corruption_fallbacks;
  return s;
}

// ---------------------------------------------------------------------------
// Differential: sampled vs exact in-RAM index, same engine, same corpus.

class SampledDifferentialTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SampledDifferentialTest, RestoresByteExactAndLossIsBoundedAndMeasured) {
  const std::string engine_name = GetParam();
  const Corpus corpus(sampled_corpus());

  MemoryBackend mem_backend;
  const auto [mem_counters, mem_loads] =
      ingest_range(engine_name, engine_config(IndexImpl::kMem), corpus, 0,
                   corpus.files().size(), mem_backend);

  MemoryBackend sampled_backend;
  const EngineConfig scfg = engine_config(IndexImpl::kSampled, 4);
  const auto [s_counters, s_loads] = ingest_range(
      engine_name, scfg, corpus, 0, corpus.files().size(), sampled_backend);

  // Correctness is never traded: every file restores byte-exactly.
  expect_all_restores_byte_exact(engine_name, scfg, corpus, sampled_backend);

  // Sampling can only lose duplicates relative to the exact index, and the
  // loss stays within the declared bound for this sample rate.
  EXPECT_LE(s_counters.dup_bytes, mem_counters.dup_bytes);
  EXPECT_GT(s_counters.dup_bytes, 0u) << "tier found no duplicates at all";
  const std::uint64_t gap = mem_counters.dup_bytes - s_counters.dup_bytes;
  EXPECT_LE(static_cast<double>(gap),
            0.60 * static_cast<double>(mem_counters.dup_bytes))
      << "sampled tier lost more than 60% of exact dedup at sample_bits=4";

  // The loss is measured, not hidden: whenever the sampled run stored
  // bytes an exact run deduplicated, its own loss meter says so.
  ObjectStore store(sampled_backend);
  auto engine = make_engine(engine_name, store, scfg);
  const auto* sampled =
      dynamic_cast<const SampledIndex*>(engine->fingerprint_index());
  ASSERT_NE(sampled, nullptr);
  if (gap > 0) {
    EXPECT_GT(sampled->missed_dup_bytes(), 0u)
        << "exact run deduped " << gap << " more bytes but the loss meter "
        << "reports no missed duplicates";
  }

  // Both stores hold the same logical data.
  EXPECT_EQ(mem_counters.input_bytes, s_counters.input_bytes);
  EXPECT_GE(sampled_backend.content_bytes(Ns::kDiskChunk),
            mem_backend.content_bytes(Ns::kDiskChunk));
}

INSTANTIATE_TEST_SUITE_P(
    SampledEngines, SampledDifferentialTest,
    testing::Values("mhd", "bf-mhd", "cdc", "bimodal", "fbc"),
    [](const testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

// Loss must respond to the sampling rate: a denser rate (fewer sample
// bits) is never allowed to lose more than a declared fraction, and the
// bound loosens as the table gets sparser.
TEST(SampledLossBound, DeclaredBoundPerSampleRate) {
  const Corpus corpus(sampled_corpus());
  MemoryBackend mem_backend;
  const auto [mem_counters, mem_loads] =
      ingest_range("bf-mhd", engine_config(IndexImpl::kMem), corpus, 0,
                   corpus.files().size(), mem_backend);
  ASSERT_GT(mem_counters.dup_bytes, 0u);

  const struct {
    std::uint32_t bits;
    double max_loss;
  } rates[] = {{2, 0.50}, {4, 0.60}, {6, 0.80}};
  for (const auto& rate : rates) {
    MemoryBackend backend;
    const EngineConfig cfg = engine_config(IndexImpl::kSampled, rate.bits);
    const auto [counters, loads] = ingest_range(
        "bf-mhd", cfg, corpus, 0, corpus.files().size(), backend);
    EXPECT_LE(counters.dup_bytes, mem_counters.dup_bytes);
    const double loss =
        static_cast<double>(mem_counters.dup_bytes - counters.dup_bytes) /
        static_cast<double>(mem_counters.dup_bytes);
    EXPECT_LE(loss, rate.max_loss) << "sample_bits=" << rate.bits;
    expect_all_restores_byte_exact("bf-mhd", cfg, corpus, backend);
  }
}

// ---------------------------------------------------------------------------
// Warm restart: closing between generations changes nothing user-visible.

class SampledWarmRestartTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SampledWarmRestartTest, RestartedRunIsBitIdenticalToUninterrupted) {
  const std::string engine_name = GetParam();
  const Corpus corpus(sampled_corpus());
  const std::size_t split = corpus.files().size() / 2;
  ASSERT_GT(split, 0u);
  const EngineConfig cfg = engine_config(IndexImpl::kSampled, 4);

  // Run A: one uninterrupted sampled engine.
  MemoryBackend solid_backend;
  const auto [solid_counters, solid_loads] =
      ingest_range(engine_name, cfg, corpus, 0, corpus.files().size(),
                   solid_backend);

  // Run B: same corpus with a full process close between the generations.
  MemoryBackend split_backend;
  const auto [gen1_counters, gen1_loads] =
      ingest_range(engine_name, cfg, corpus, 0, split, split_backend);
  ASSERT_TRUE(sampled_index_present(split_backend));
  const auto [gen2_counters, gen2_loads] = ingest_range(
      engine_name, cfg, corpus, split, corpus.files().size(), split_backend);

  // Identical user-visible stores: every data/metadata object bit-equal
  // (the index namespace legitimately differs in generation numbers).
  for (const Ns ns :
       {Ns::kDiskChunk, Ns::kHook, Ns::kManifest, Ns::kFileManifest}) {
    expect_namespace_identical(solid_backend, split_backend, ns);
  }
  // Identical dedup decisions, including across the restart boundary.
  expect_counters_equal(solid_counters, sum(gen1_counters, gen2_counters));
  // The warm restart restores the residency, so the reopened run loads no
  // manifest the uninterrupted run didn't.
  EXPECT_EQ(solid_loads, gen1_loads + gen2_loads);

  // The restarted tier is self-consistent on top of being equivalent.
  const auto report = check_sampled_index(split_backend);
  EXPECT_TRUE(report.meta_ok);
  EXPECT_EQ(report.stale_champions, 0u);
  EXPECT_EQ(report.corrupt_objects, 0u);
  EXPECT_GT(report.hook_entries, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SampledEngines, SampledWarmRestartTest,
    testing::Values("mhd", "bf-mhd", "cdc", "bimodal", "fbc"),
    [](const testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

// ---------------------------------------------------------------------------
// Crash window: the shadow-paged flush tears mid-commit.
//
// flush() writes sampled-state-g<G+1> (op 1), commits sampled-meta (op 2),
// then removes the old state (op 3). Tearing op 1 leaves a committed meta
// naming an unreadable state; tearing op 2 leaves a torn commit point.
// Both must be found by fsck, repaired by a rebuild from the hooks
// namespace, and leave a repository that ingests and restores correctly.

class SampledTornFlushTest : public ::testing::TestWithParam<int> {};

TEST_P(SampledTornFlushTest, FsckRepairsTornCommitAndRepoStaysUsable) {
  const int torn_op = GetParam();
  const Corpus corpus(sampled_corpus());
  const std::size_t split = corpus.files().size() / 2;
  const EngineConfig cfg = engine_config(IndexImpl::kSampled, 4);

  MemoryBackend raw;
  {
    FramedBackend framed(raw);
    ingest_range("bf-mhd", cfg, corpus, 0, split, framed);
  }
  ASSERT_TRUE(fsck_repository(raw, /*repair=*/false).clean());

  // Re-open the tier through a fault plan that tears the torn_op-th
  // mutating write of the next flush — the seeded tear fraction makes the
  // damage deterministic.
  {
    FaultInjectingBackend faulty(
        raw, FaultPlan::parse("torn@" + std::to_string(torn_op) +
                              ":0.4,seed:9"));
    FramedBackend framed(faulty);
    SampledIndexConfig scfg;
    scfg.sample_bits = cfg.sample_bits;
    SampledIndex index(framed, scfg);
    index.flush();
  }

  // fsck finds the torn object and repairs by rebuilding from the hooks.
  const FsckReport before = fsck_repository(raw, /*repair=*/false);
  EXPECT_FALSE(before.clean()) << "tear at op " << torn_op << " not detected";
  const FsckReport repair = fsck_repository(raw, /*repair=*/true);
  EXPECT_GT(repair.repaired, 0u);
  EXPECT_TRUE(fsck_repository(raw, /*repair=*/false).clean());

  // The repaired repository keeps working: generation 2 ingests through
  // the rebuilt tier and every file restores byte-exactly.
  {
    FramedBackend framed(raw);
    ASSERT_TRUE(sampled_index_present(framed));
    ingest_range("bf-mhd", cfg, corpus, split, corpus.files().size(), framed);
    expect_all_restores_byte_exact("bf-mhd", cfg, corpus, framed);
    const auto report = check_sampled_index(framed);
    EXPECT_TRUE(report.meta_ok);
    EXPECT_EQ(report.stale_champions, 0u);
    EXPECT_EQ(report.corrupt_objects, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(TornOps, SampledTornFlushTest, testing::Values(1, 2),
                         [](const testing::TestParamInfo<int>& info) {
                           return info.param == 1 ? "TornState" : "TornMeta";
                         });

// ---------------------------------------------------------------------------
// GC: swept manifests must not resurrect through stale champion refs.

TEST(SampledGcInteraction, SweptChampionsAreDroppedAndRepoReusable) {
  const Corpus corpus(sampled_corpus());
  MemoryBackend backend;
  const EngineConfig cfg = engine_config(IndexImpl::kSampled, 4);
  ingest_range("bf-mhd", cfg, corpus, 0, corpus.files().size(), backend);
  ASSERT_EQ(check_sampled_index(backend).stale_champions, 0u);

  std::vector<std::size_t> deleted;
  for (std::size_t i = 0; i < corpus.files().size(); ++i) {
    ASSERT_TRUE(delete_file(backend, corpus.files()[i].name));
    deleted.push_back(i);
  }
  const GcReport gc = collect_garbage(backend);
  EXPECT_TRUE(gc.sampled_index_rebuilt);
  EXPECT_GT(gc.deleted_manifests, 0u);
  EXPECT_GT(gc.dropped_sampled_champions, 0u);

  // No champion may survive pointing at a swept manifest — that reference
  // would hand a reopened engine a dangling duplicate source.
  const auto after_gc = check_sampled_index(backend);
  EXPECT_TRUE(after_gc.meta_ok);
  EXPECT_EQ(after_gc.stale_champions, 0u);

  // Reopen and re-ingest: the tier must re-learn the hooks, and every
  // file must restore byte-exactly.
  {
    ObjectStore store(backend);
    auto engine = make_engine("bf-mhd", store, cfg);
    for (const std::size_t i : deleted) {
      auto src = corpus.open(i);
      engine->add_file(corpus.files()[i].name, *src);
    }
    engine->finish();
  }
  expect_all_restores_byte_exact("bf-mhd", cfg, corpus, backend);
  const auto final_report = check_sampled_index(backend);
  EXPECT_TRUE(final_report.meta_ok);
  EXPECT_EQ(final_report.stale_champions, 0u);
  const auto scrub = scrub_repository(backend);
  EXPECT_TRUE(scrub.clean());
}

// ---------------------------------------------------------------------------
// Namespace coexistence: disk index and sampled tier share Ns::kIndex.

TEST(SampledDiskCoexistence, RebuildingEitherTierSparesTheOther) {
  const Corpus corpus(sampled_corpus());
  const std::size_t split = corpus.files().size() / 2;
  MemoryBackend backend;

  // Generation 1 builds the sampled tier; generation 2 (a disk-index
  // engine over the same repository) builds the persistent index next to
  // it under the same namespace.
  ingest_range("bf-mhd", engine_config(IndexImpl::kSampled, 4), corpus, 0,
               split, backend);
  ingest_range("bf-mhd", engine_config(IndexImpl::kDisk), corpus, split,
               corpus.files().size(), backend);
  ASSERT_TRUE(sampled_index_present(backend));
  ASSERT_TRUE(index_present(backend));
  EXPECT_TRUE(check_sampled_index(backend).meta_ok);
  EXPECT_TRUE(check_index(backend).meta_ok);

  // Rebuilding the disk index must not disturb the sampled tier...
  rebuild_index(backend);
  EXPECT_TRUE(check_index(backend).meta_ok);
  const auto sampled_after = check_sampled_index(backend);
  EXPECT_TRUE(sampled_after.meta_ok);
  EXPECT_EQ(sampled_after.corrupt_objects, 0u);
  EXPECT_GT(sampled_after.hook_entries, 0u);

  // ...and vice versa.
  rebuild_sampled_index(backend);
  EXPECT_TRUE(check_sampled_index(backend).meta_ok);
  const auto disk_after = check_index(backend);
  EXPECT_TRUE(disk_after.meta_ok);
  EXPECT_EQ(disk_after.corrupt_objects, 0u);

  expect_all_restores_byte_exact(
      "bf-mhd", engine_config(IndexImpl::kSampled, 4), corpus, backend);
}

}  // namespace
}  // namespace mhd
