// Differential harness for the SHA-1 compression-kernel family.
//
// The SHA-NI and SSSE3-schedule kernels are correctness-critical rewrites
// of the fingerprint that names every stored object, so each compiled-in
// kernel the host supports is locked down against the portable reference
// from four directions:
//  1. NIST FIPS 180-1 vectors through the one-shot path per kernel;
//  2. every length edge around the 64-byte block and the 56-byte padding
//     threshold (0, 1, 55, 56, 57, 63, 64, 65, ... multi-block);
//  3. randomized buffers (seed-logged) one-shot vs. the portable kernel;
//  4. streaming update() with randomized split patterns vs. the one-shot
//     digest, per kernel, via the process-wide dispatch.
//
// A dispatch-resolution suite pins the --hash-impl request → kernel
// mapping, including graceful fallback and the MHD_FORCE_PORTABLE_HASH
// override the CI forced-portable ctest run relies on.
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mhd/hash/sha1.h"
#include "mhd/util/cpufeatures.h"
#include "mhd/util/random.h"

namespace mhd {
namespace {

ByteVec random_buffer(std::uint64_t seed, std::size_t n) {
  Xoshiro256 rng(seed);
  ByteVec data(n);
  for (auto& b : data) b = static_cast<Byte>(rng());
  return data;
}

/// Restores the process-wide dispatch to kAuto when a test is done with
/// its override, so suite order can't leak a pinned kernel.
struct DispatchGuard {
  ~DispatchGuard() { set_sha1_impl(Sha1Impl::kAuto); }
};

TEST(Sha1Kernels, RegistryHasPortableFirstAndAlwaysSupported) {
  const auto kernels = sha1_kernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_STREQ(kernels[0].name, "portable");
  EXPECT_TRUE(kernels[0].supported);
  EXPECT_EQ(kernels[0].fn, &sha1_compress_portable);
}

TEST(Sha1Kernels, NistVectorsPerKernel) {
  const struct {
    std::string_view msg;
    std::string_view hex;
  } kVectors[] = {
      {"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
      {"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"},
      {"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
       "84983e441c3bd26ebaae4aa1f95129e5e54670f1"},
      {"The quick brown fox jumps over the lazy dog",
       "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"},
  };
  for (const auto& k : sha1_kernels()) {
    if (!k.supported) continue;
    for (const auto& v : kVectors) {
      EXPECT_EQ(sha1_digest_with(k.fn, as_bytes(v.msg)).hex(), v.hex)
          << "kernel=" << k.name << " msg.size=" << v.msg.size();
    }
  }
}

TEST(Sha1Kernels, MillionAsPerKernel) {
  const ByteVec data(1000000, static_cast<Byte>('a'));
  for (const auto& k : sha1_kernels()) {
    if (!k.supported) continue;
    EXPECT_EQ(sha1_digest_with(k.fn, data).hex(),
              "34aa973cd4c4daa4f61eeb2bdbad27316534016f")
        << "kernel=" << k.name;
  }
}

// Every length that matters to block handling and padding: around the
// 56-byte one-vs-two-block padding threshold, the 64-byte block edge, and
// multi-block sizes (including a length that leaves the maximum tail).
TEST(Sha1Kernels, EdgeLengthsMatchPortable) {
  const std::size_t kLengths[] = {0,  1,  54,  55,  56,  57,  63,  64,
                                  65, 119, 120, 127, 128, 129, 191, 192,
                                  255, 256, 1000, 4096, 4159, 65536};
  for (const std::size_t n : kLengths) {
    const ByteVec data = random_buffer(0xD1F5 + n, n);
    const Digest ref = sha1_digest_with(&sha1_compress_portable, data);
    for (const auto& k : sha1_kernels()) {
      if (!k.supported) continue;
      EXPECT_EQ(sha1_digest_with(k.fn, data).hex(), ref.hex())
          << "kernel=" << k.name << " length=" << n;
    }
  }
}

TEST(Sha1Kernels, RandomBuffersMatchPortable) {
  Xoshiro256 rng(20260806);
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint64_t seed = rng();
    const std::size_t n = static_cast<std::size_t>(rng() % 20000);
    const ByteVec data = random_buffer(seed, n);
    const Digest ref = sha1_digest_with(&sha1_compress_portable, data);
    for (const auto& k : sha1_kernels()) {
      if (!k.supported) continue;
      ASSERT_EQ(sha1_digest_with(k.fn, data).hex(), ref.hex())
          << "kernel=" << k.name << " seed=" << seed << " length=" << n;
    }
  }
}

// Streaming equality: pin each kernel through the dispatch, then feed the
// same buffer through update() split at randomized offsets. Exercises the
// 64-byte staging buffer at every phase (partial fills, exact fills,
// multi-block middles) and proves one-shot == streaming per kernel.
TEST(Sha1Kernels, RandomizedIncrementalSplitsPerKernel) {
  const DispatchGuard guard;
  Xoshiro256 rng(777);
  for (const auto& k : sha1_kernels()) {
    if (!k.supported) continue;
    set_sha1_impl(k.impl);
    // Under MHD_FORCE_PORTABLE_HASH the pin resolves to portable instead.
    ASSERT_STREQ(active_sha1_impl_name(), resolved_sha1_impl_name(k.impl));
    for (int trial = 0; trial < 60; ++trial) {
      const std::uint64_t seed = rng();
      const std::size_t n = 1 + static_cast<std::size_t>(rng() % 8000);
      const ByteVec data = random_buffer(seed, n);
      const Digest oneshot = Sha1::digest_of(data);
      EXPECT_EQ(oneshot.hex(),
                sha1_digest_with(&sha1_compress_portable, data).hex())
          << "kernel=" << k.name << " seed=" << seed;

      Sha1 h;
      std::size_t off = 0;
      while (off < data.size()) {
        // Bias toward tiny pieces so the staging buffer sees many phases.
        std::size_t piece = 1 + static_cast<std::size_t>(
                                    rng() % (rng() % 2 ? 7 : 200));
        piece = std::min(piece, data.size() - off);
        h.update({data.data() + off, piece});
        off += piece;
      }
      ASSERT_EQ(h.digest().hex(), oneshot.hex())
          << "kernel=" << k.name << " seed=" << seed << " length=" << n;
    }
  }
}

TEST(Sha1Kernels, Hash2MatchesConcatenationPerKernel) {
  const DispatchGuard guard;
  const ByteVec a = random_buffer(1, 333);
  const ByteVec b = random_buffer(2, 79);
  ByteVec joined = a;
  joined.insert(joined.end(), b.begin(), b.end());
  for (const auto& k : sha1_kernels()) {
    if (!k.supported) continue;
    set_sha1_impl(k.impl);
    EXPECT_EQ(Sha1::hash2(a, b).hex(), Sha1::digest_of(joined).hex())
        << "kernel=" << k.name;
  }
}

// ---- Dispatch resolution ----------------------------------------------

TEST(Sha1Dispatch, AutoResolvesToBestSupportedKernel) {
  if (sha1_portable_forced()) {
    EXPECT_STREQ(resolved_sha1_impl_name(Sha1Impl::kAuto), "portable");
    return;
  }
  const CpuFeatures& f = cpu_features();
  const char* expected = (f.sha_ni && f.sse41) ? "shani"
                         : f.ssse3             ? "simd-ssse3"
                                               : "portable";
  EXPECT_STREQ(resolved_sha1_impl_name(Sha1Impl::kAuto), expected);
}

TEST(Sha1Dispatch, ExplicitPortableAlwaysResolvesPortable) {
  EXPECT_STREQ(resolved_sha1_impl_name(Sha1Impl::kPortable), "portable");
}

TEST(Sha1Dispatch, UnsupportedExplicitRequestFallsBackGracefully) {
  // Whatever the host, an explicit request never fails: it resolves to
  // some supported kernel from the registry.
  for (const Sha1Impl req : {Sha1Impl::kShaNi, Sha1Impl::kSimd}) {
    const std::string resolved = resolved_sha1_impl_name(req);
    bool found = false;
    for (const auto& k : sha1_kernels()) {
      if (resolved == k.name) found = k.supported;
    }
    EXPECT_TRUE(found) << "request=" << sha1_impl_name(req)
                       << " resolved=" << resolved;
  }
}

TEST(Sha1Dispatch, FlagNamesRoundTrip) {
  for (const Sha1Impl impl : {Sha1Impl::kAuto, Sha1Impl::kShaNi,
                              Sha1Impl::kSimd, Sha1Impl::kPortable}) {
    EXPECT_EQ(sha1_impl_from_string(sha1_impl_name(impl)), impl);
  }
  EXPECT_THROW(sha1_impl_from_string("sha256"), std::invalid_argument);
  EXPECT_THROW(sha1_impl_from_string(""), std::invalid_argument);
  EXPECT_THROW(sha1_impl_from_string("SHANI"), std::invalid_argument);
}

TEST(Sha1Dispatch, ForcedPortableEnvOverridesEveryRequest) {
  const DispatchGuard guard;
  ASSERT_EQ(setenv("MHD_FORCE_PORTABLE_HASH", "1", /*overwrite=*/1), 0);
  EXPECT_TRUE(sha1_portable_forced());
  for (const Sha1Impl req : {Sha1Impl::kAuto, Sha1Impl::kShaNi,
                             Sha1Impl::kSimd, Sha1Impl::kPortable}) {
    EXPECT_STREQ(resolved_sha1_impl_name(req), "portable")
        << "request=" << sha1_impl_name(req);
  }
  set_sha1_impl(Sha1Impl::kAuto);
  EXPECT_STREQ(active_sha1_impl_name(), "portable");

  // "0" and unset both mean not forced; the env is read live.
  ASSERT_EQ(setenv("MHD_FORCE_PORTABLE_HASH", "0", 1), 0);
  EXPECT_FALSE(sha1_portable_forced());
  ASSERT_EQ(unsetenv("MHD_FORCE_PORTABLE_HASH"), 0);
  EXPECT_FALSE(sha1_portable_forced());
}

}  // namespace
}  // namespace mhd
