#include "mhd/hash/mix.h"

#include <gtest/gtest.h>

namespace mhd {
namespace {

TEST(Fnv1a64, KnownVectors) {
  // Standard FNV-1a 64 test values.
  EXPECT_EQ(fnv1a64({}), 0xCBF29CE484222325ULL);
  EXPECT_EQ(fnv1a64(as_bytes("a")), 0xAF63DC4C8601EC8CULL);
  EXPECT_EQ(fnv1a64(as_bytes("foobar")), 0x85944171F73967E8ULL);
}

TEST(Mix64, OrderSensitive) {
  EXPECT_NE(mix64(1, 2), mix64(2, 1));
}

TEST(Mix64, Deterministic) {
  EXPECT_EQ(mix64(123, 456), mix64(123, 456));
}

TEST(Mix64, SpreadsLowBits) {
  // Counter inputs should produce well-spread outputs.
  std::uint64_t min_diff = ~0ULL;
  for (std::uint64_t i = 0; i < 100; ++i) {
    const std::uint64_t d = mix64(i, 7) ^ mix64(i + 1, 7);
    min_diff = std::min(min_diff, d);
  }
  EXPECT_GT(min_diff, 0u);
}

}  // namespace
}  // namespace mhd
