#include "mhd/hash/sha1.h"

#include <gtest/gtest.h>

#include <string>

namespace mhd {
namespace {

std::string sha1_hex(std::string_view s) { return Sha1::hash(as_bytes(s)).hex(); }

// FIPS 180-1 / RFC 3174 test vectors.
TEST(Sha1, EmptyString) {
  EXPECT_EQ(sha1_hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(sha1_hex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(sha1_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  Sha1 h;
  const std::string block(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(as_bytes(block));
  EXPECT_EQ(h.digest().hex(), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, QuickBrownFox) {
  EXPECT_EQ(sha1_hex("The quick brown fox jumps over the lazy dog"),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  ByteVec data;
  for (int i = 0; i < 100000; ++i) data.push_back(static_cast<Byte>(i * 31));
  const Digest whole = Sha1::hash(data);

  // Feed in awkward piece sizes crossing block boundaries.
  Sha1 h;
  std::size_t pos = 0;
  std::size_t step = 1;
  while (pos < data.size()) {
    const std::size_t n = std::min(step, data.size() - pos);
    h.update({data.data() + pos, n});
    pos += n;
    step = (step * 7 + 3) % 200 + 1;
  }
  EXPECT_EQ(h.digest(), whole);
}

TEST(Sha1, Hash2ConcatenatesSpans) {
  const auto a = as_bytes("hello ");
  const auto b = as_bytes("world");
  EXPECT_EQ(Sha1::hash2(a, b), Sha1::hash(as_bytes("hello world")));
}

TEST(Sha1, ResetAllowsReuse) {
  Sha1 h;
  h.update(as_bytes("garbage"));
  h.reset();
  h.update(as_bytes("abc"));
  EXPECT_EQ(h.digest().hex(), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, LengthBoundaryCases) {
  // Messages near the 55/56/64-byte padding boundaries.
  for (std::size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
    const std::string m(len, 'x');
    Sha1 h;
    h.update(as_bytes(m));
    const Digest d1 = h.digest();
    // Same content in two pieces must agree.
    Sha1 h2;
    h2.update(as_bytes(std::string_view(m).substr(0, len / 2)));
    h2.update(as_bytes(std::string_view(m).substr(len / 2)));
    EXPECT_EQ(h2.digest(), d1) << "len=" << len;
  }
}

TEST(Digest, Prefix64AndZeroCheck) {
  Digest zero{};
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.prefix64(), 0u);
  const Digest d = Sha1::hash(as_bytes("x"));
  EXPECT_FALSE(d.is_zero());
  EXPECT_NE(d.prefix64(), 0u);
}

TEST(Digest, OrderingAndEquality) {
  const Digest a = Sha1::hash(as_bytes("a"));
  const Digest b = Sha1::hash(as_bytes("b"));
  EXPECT_NE(a, b);
  EXPECT_EQ(a, Sha1::hash(as_bytes("a")));
  EXPECT_TRUE(a < b || b < a);
}

}  // namespace
}  // namespace mhd
