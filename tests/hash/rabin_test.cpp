#include "mhd/hash/rabin.h"

#include <gtest/gtest.h>

#include "mhd/util/random.h"

namespace mhd {
namespace {

ByteVec random_bytes(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  ByteVec out(n);
  for (auto& b : out) b = static_cast<Byte>(rng());
  return out;
}

TEST(PolyDegree, Basics) {
  EXPECT_EQ(poly_degree(0), -1);
  EXPECT_EQ(poly_degree(1), 0);
  EXPECT_EQ(poly_degree(0b1000), 3);
  EXPECT_EQ(poly_degree(RabinFingerprint::kDefaultPoly), 63);
}

TEST(PolyModShifted, ReducesBelowDegree) {
  const std::uint64_t p = RabinFingerprint::kDefaultPoly;
  for (std::uint64_t v : {1ULL, 0xFFULL, 0xABCDULL}) {
    const std::uint64_t r = poly_mod_shifted(v, 63, p);
    EXPECT_LT(poly_degree(r), 63);
  }
}

TEST(PolyModShifted, ZeroShiftSmallValueIsIdentity) {
  const std::uint64_t p = RabinFingerprint::kDefaultPoly;
  EXPECT_EQ(poly_mod_shifted(0x1234, 0, p), 0x1234u);
}

TEST(PolyModShifted, Linearity) {
  // (a ^ b) << s mod p == (a << s mod p) ^ (b << s mod p) over GF(2).
  const std::uint64_t p = RabinFingerprint::kDefaultPoly;
  const std::uint64_t a = 0x5A, b = 0xC3;
  EXPECT_EQ(poly_mod_shifted(a ^ b, 40, p),
            poly_mod_shifted(a, 40, p) ^ poly_mod_shifted(b, 40, p));
}

// The defining property of a rolling hash: after pushing a long stream, the
// fingerprint equals the direct (non-rolling) fingerprint of just the last
// `window` bytes.
TEST(RabinFingerprint, RollingEqualsDirectOfWindow) {
  const std::size_t w = 48;
  RabinFingerprint rf(w);
  const ByteVec data = random_bytes(4096, 99);
  for (Byte b : data) rf.push(b);
  const ByteSpan last_window(data.data() + data.size() - w, w);
  EXPECT_EQ(rf.value(), rf.fingerprint(last_window));
}

TEST(RabinFingerprint, RollingEqualsDirectVariousWindows) {
  for (std::size_t w : {16u, 32u, 48u, 64u}) {
    RabinFingerprint rf(w);
    const ByteVec data = random_bytes(1000, w);
    for (Byte b : data) rf.push(b);
    const ByteSpan last(data.data() + data.size() - w, w);
    EXPECT_EQ(rf.value(), rf.fingerprint(last)) << "window=" << w;
  }
}

TEST(RabinFingerprint, WindowContentDeterminesValue) {
  // Two different streams ending in the same 48 bytes agree.
  const std::size_t w = 48;
  RabinFingerprint a(w), b(w);
  const ByteVec prefix1 = random_bytes(500, 1);
  const ByteVec prefix2 = random_bytes(300, 2);
  const ByteVec tail = random_bytes(w, 3);
  for (Byte x : prefix1) a.push(x);
  for (Byte x : tail) a.push(x);
  for (Byte x : prefix2) b.push(x);
  for (Byte x : tail) b.push(x);
  EXPECT_EQ(a.value(), b.value());
}

TEST(RabinFingerprint, ResetClearsState) {
  RabinFingerprint rf(48);
  for (Byte b : random_bytes(100, 4)) rf.push(b);
  rf.reset();
  EXPECT_EQ(rf.value(), 0u);
  // Post-reset behaviour matches a fresh instance.
  RabinFingerprint fresh(48);
  const ByteVec data = random_bytes(100, 5);
  for (Byte b : data) {
    EXPECT_EQ(rf.push(b), fresh.push(b));
  }
}

TEST(RabinFingerprint, ValuesStayBelowDegreeBound) {
  RabinFingerprint rf(48);
  for (Byte b : random_bytes(10000, 6)) {
    EXPECT_LT(rf.push(b), 1ULL << 63);
  }
}

TEST(RabinFingerprint, SensitiveToSingleByteChange) {
  const std::size_t w = 48;
  RabinFingerprint rf(w);
  ByteVec data = random_bytes(w, 7);
  const std::uint64_t before = rf.fingerprint(data);
  data[w / 2] ^= 1;
  EXPECT_NE(rf.fingerprint(data), before);
}

}  // namespace
}  // namespace mhd
