#include "mhd/metrics/json_export.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>

namespace mhd {
namespace {

TEST(JsonEscape, HandlesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonEscape, EveryControlCharacterBecomesAnEscape) {
  // RFC 8259: U+0000..U+001F must be escaped. \n, \r and \t get their
  // short forms; everything else the \u00xx form. The daemon's stats and
  // error strings pass through json_escape, so raw tenant-supplied file
  // names with control bytes must never reach a JSON consumer verbatim.
  for (int c = 0x00; c < 0x20; ++c) {
    const std::string escaped = json_escape(std::string(1, static_cast<char>(c)));
    ASSERT_GE(escaped.size(), 2u) << "char " << c;
    EXPECT_EQ(escaped[0], '\\') << "char " << c;
    switch (c) {
      case '\n': EXPECT_EQ(escaped, "\\n"); break;
      case '\r': EXPECT_EQ(escaped, "\\r"); break;
      case '\t': EXPECT_EQ(escaped, "\\t"); break;
      default: {
        char expect[8];
        std::snprintf(expect, sizeof(expect), "\\u%04x", c);
        EXPECT_EQ(escaped, expect) << "char " << c;
      }
    }
  }
}

TEST(JsonEscape, EmbeddedNulAndMixedContent) {
  std::string s = "a";
  s.push_back('\0');
  s += "b";
  EXPECT_EQ(json_escape(s), "a\\u0000b");
  EXPECT_EQ(json_escape("tab\there\nquote\"end"),
            "tab\\there\\nquote\\\"end");
}

TEST(JsonEscape, PassesThroughPrintableAndHighBytes) {
  // 0x20..0x7E are literal; DEL and high (UTF-8 continuation) bytes pass
  // through unmodified — the escaper only owns the C0 range and the two
  // JSON metacharacters.
  std::string printable;
  for (int c = 0x20; c < 0x7F; ++c) {
    if (c != '"' && c != '\\') printable.push_back(static_cast<char>(c));
  }
  EXPECT_EQ(json_escape(printable), printable);
  EXPECT_EQ(json_escape("\x7F"), "\x7F");
  EXPECT_EQ(json_escape("gr\xC3\xBC\xC3\x9F"), "gr\xC3\xBC\xC3\x9F");
}

ExperimentResult sample() {
  ExperimentResult r;
  r.algorithm = "BF-MHD";
  r.ecs = 1024;
  r.sd = 32;
  r.input_bytes = 1000000;
  r.stored_data_bytes = 250000;
  r.counters.dup_bytes = 750000;
  r.counters.dup_slices = 10;
  r.dedup_seconds = 2.0;
  r.copy_seconds = 1.0;
  r.chunker = "gear";
  r.chunker_impl = "simd-avx2";
  return r;
}

TEST(JsonExport, ContainsAllHeadlineFields) {
  const std::string j = to_json(sample());
  EXPECT_NE(j.find("\"algorithm\":\"BF-MHD\""), std::string::npos);
  EXPECT_NE(j.find("\"ecs\":1024"), std::string::npos);
  EXPECT_NE(j.find("\"data_only_der\":4"), std::string::npos);
  EXPECT_NE(j.find("\"throughput_ratio\":0.5"), std::string::npos);
  EXPECT_NE(j.find("\"dad_bytes\":75000"), std::string::npos);
  EXPECT_NE(j.find("\"chunker\":\"gear\""), std::string::npos);
  EXPECT_NE(j.find("\"chunker_impl\":\"simd-avx2\""), std::string::npos);
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
}

TEST(JsonExport, ArrayFormat) {
  const std::string j = to_json(std::vector<ExperimentResult>{sample(), sample()});
  EXPECT_EQ(j.front(), '[');
  EXPECT_EQ(j.back(), '\n');
  EXPECT_EQ(std::count(j.begin(), j.end(), '{'), 2);
  // One comma between the two objects.
  EXPECT_NE(j.find("},\n"), std::string::npos);
}

TEST(JsonExport, EmptyArray) {
  EXPECT_EQ(to_json(std::vector<ExperimentResult>{}), "[\n]\n");
}

}  // namespace
}  // namespace mhd
