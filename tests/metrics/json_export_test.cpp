#include "mhd/metrics/json_export.h"

#include <gtest/gtest.h>

namespace mhd {
namespace {

TEST(JsonEscape, HandlesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

ExperimentResult sample() {
  ExperimentResult r;
  r.algorithm = "BF-MHD";
  r.ecs = 1024;
  r.sd = 32;
  r.input_bytes = 1000000;
  r.stored_data_bytes = 250000;
  r.counters.dup_bytes = 750000;
  r.counters.dup_slices = 10;
  r.dedup_seconds = 2.0;
  r.copy_seconds = 1.0;
  r.chunker = "gear";
  r.chunker_impl = "simd-avx2";
  return r;
}

TEST(JsonExport, ContainsAllHeadlineFields) {
  const std::string j = to_json(sample());
  EXPECT_NE(j.find("\"algorithm\":\"BF-MHD\""), std::string::npos);
  EXPECT_NE(j.find("\"ecs\":1024"), std::string::npos);
  EXPECT_NE(j.find("\"data_only_der\":4"), std::string::npos);
  EXPECT_NE(j.find("\"throughput_ratio\":0.5"), std::string::npos);
  EXPECT_NE(j.find("\"dad_bytes\":75000"), std::string::npos);
  EXPECT_NE(j.find("\"chunker\":\"gear\""), std::string::npos);
  EXPECT_NE(j.find("\"chunker_impl\":\"simd-avx2\""), std::string::npos);
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
}

TEST(JsonExport, ArrayFormat) {
  const std::string j = to_json(std::vector<ExperimentResult>{sample(), sample()});
  EXPECT_EQ(j.front(), '[');
  EXPECT_EQ(j.back(), '\n');
  EXPECT_EQ(std::count(j.begin(), j.end(), '{'), 2);
  // One comma between the two objects.
  EXPECT_NE(j.find("},\n"), std::string::npos);
}

TEST(JsonExport, EmptyArray) {
  EXPECT_EQ(to_json(std::vector<ExperimentResult>{}), "[\n]\n");
}

}  // namespace
}  // namespace mhd
