#include "mhd/metrics/analysis.h"

#include <gtest/gtest.h>

namespace mhd {
namespace {

AnalysisInputs sample() {
  AnalysisInputs in;
  in.F = 100;
  in.N = 1000000;
  in.D = 3000000;
  in.L = 500;
  in.SD = 1000;
  return in;
}

TEST(Table1, CdcMatchesPaperFormulas) {
  const auto in = sample();
  const auto m = table1_cdc(in);
  EXPECT_EQ(m.inodes_diskchunks, in.F);
  EXPECT_EQ(m.inodes_hooks, in.N);
  EXPECT_EQ(m.inodes_manifests, in.F);
  EXPECT_EQ(m.manifest_bytes, 36 * in.N);
  EXPECT_EQ(m.summary_printed, 512 * in.F + 312 * in.N);
  // For CDC the printed summary equals the component sum.
  EXPECT_EQ(m.summary_components(), m.summary_printed);
}

TEST(Table1, BimodalPrintedSummaryMatchesComponents) {
  const auto in = sample();
  const auto m = table1_bimodal(in);
  EXPECT_EQ(m.inodes_hooks, in.N / in.SD + 2 * in.L * (in.SD - 1));
  EXPECT_EQ(m.summary_components(), m.summary_printed);
}

TEST(Table1, MhdPrintedSummaryDivergesFromComponentsAsInPaper) {
  // The paper's MHD summary row (512F + 424N/SD) omits the 148L HHR bytes
  // and differs from its own component rows; we preserve both.
  const auto in = sample();
  const auto m = table1_mhd(in);
  EXPECT_EQ(m.manifest_bytes, 74 * in.N / in.SD + 148 * in.L);
  EXPECT_EQ(m.summary_printed, 512 * in.F + 424 * in.N / in.SD);
  EXPECT_EQ(m.summary_components(),
            512 * in.F + 350 * in.N / in.SD + 148 * in.L);
}

TEST(Table1, MhdRequiresFarLessThanCdc) {
  const auto in = sample();
  EXPECT_LT(table1_mhd(in).summary_components(),
            table1_cdc(in).summary_components() / 100);
}

TEST(Table1, OrderingAtPaperScale) {
  // With SD high, MHD < Bimodal and MHD < SubChunk and MHD < CDC.
  const auto in = sample();
  const auto mhd = table1_mhd(in).summary_components();
  EXPECT_LT(mhd, table1_bimodal(in).summary_components());
  EXPECT_LT(mhd, table1_subchunk(in).summary_components());
  EXPECT_LT(mhd, table1_cdc(in).summary_components());
}

TEST(Table2, CdcRows) {
  const auto in = sample();
  const auto m = table2_cdc(in);
  EXPECT_EQ(m.hook_out, in.N);
  EXPECT_EQ(m.small_chunk_query, in.N + in.L);
  EXPECT_EQ(m.summary_without_bloom, 2 * in.F + 3 * in.L + 2 * in.N);
  EXPECT_EQ(m.summary_with_bloom, 2 * in.F + 3 * in.L + in.N);
}

TEST(Table2, MhdHasNoBigChunkQueries) {
  const auto m = table2_mhd(sample());
  EXPECT_EQ(m.big_chunk_query, 0u);
  EXPECT_EQ(m.chunk_in, 2 * sample().L);  // HHR byte reloads
}

TEST(Table2, MhdBeatsOthersWhenSlicesAreConcentrated) {
  // The paper's condition: when 3L < D/SD, MHD has the fewest accesses.
  auto in = sample();
  ASSERT_LT(3 * in.L, in.D / in.SD);
  const auto mhd = table2_mhd(in).summary_with_bloom;
  EXPECT_LT(mhd, table2_cdc(in).summary_with_bloom);
  EXPECT_LT(mhd, table2_subchunk(in).summary_with_bloom);
  EXPECT_LT(mhd, table2_bimodal(in).summary_with_bloom);
}

TEST(Table2, MhdWinsConditionHelper) {
  auto in = sample();
  EXPECT_TRUE(mhd_wins_disk_accesses(in));  // 1500 < 3000
  in.L = 5000;
  EXPECT_FALSE(mhd_wins_disk_accesses(in));
}

TEST(Table2, BimodalQueryCostScalesWithSd) {
  auto in = sample();
  const auto low = table2_bimodal(in).summary_with_bloom;
  in.SD = 2000;
  const auto high = table2_bimodal(in).summary_with_bloom;
  EXPECT_GT(high, low);  // (2SD+1)L grows with SD
}

TEST(Table2, SubChunkPaysBigChunkQueries) {
  const auto in = sample();
  const auto m = table2_subchunk(in);
  EXPECT_EQ(m.big_chunk_query, (in.N + in.D) / in.SD);
  EXPECT_EQ(m.chunk_out, in.N / in.SD);  // one container per big chunk
}

}  // namespace
}  // namespace mhd
