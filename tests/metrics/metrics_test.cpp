#include "mhd/metrics/metrics.h"

#include <gtest/gtest.h>

#include "../dedup/engine_test_util.h"
#include "mhd/dedup/cdc_engine.h"
#include "mhd/store/memory_backend.h"

namespace mhd {
namespace {

using testutil::NamedFile;
using testutil::random_bytes;

TEST(MetadataBreakdown, PullsFromBackend) {
  MemoryBackend b;
  b.put(Ns::kDiskChunk, "c", ByteVec(1000, 1));
  b.put(Ns::kHook, "h", ByteVec(20, 2));
  b.put(Ns::kManifest, "m", ByteVec(74, 3));
  b.put(Ns::kFileManifest, "f", ByteVec(32, 4));
  const auto m = MetadataBreakdown::from(b);
  EXPECT_EQ(m.inodes_diskchunks, 1u);
  EXPECT_EQ(m.inodes_hooks, 1u);
  EXPECT_EQ(m.total_inodes(), 4u);
  EXPECT_EQ(m.hook_bytes, 20u);
  EXPECT_EQ(m.manifest_bytes, 74u);
  EXPECT_EQ(m.filemanifest_bytes, 32u);
  EXPECT_EQ(m.inode_bytes(), 4 * 256u);
  EXPECT_EQ(m.total_bytes(), 4 * 256u + 20 + 74 + 32);
  EXPECT_EQ(m.hook_manifest_bytes(), 94u);
}

TEST(ExperimentResult, DerivedMetrics) {
  ExperimentResult r;
  r.input_bytes = 100 << 20;
  r.stored_data_bytes = 25 << 20;
  r.metadata.hook_bytes = 1 << 20;
  r.counters.dup_bytes = 75 << 20;
  r.counters.dup_slices = 750;
  r.dedup_seconds = 10;
  r.copy_seconds = 4;

  EXPECT_DOUBLE_EQ(r.data_only_der(), 4.0);
  EXPECT_LT(r.real_der(), 4.0);  // metadata reduces the real DER
  EXPECT_GT(r.real_der(), 3.8);
  EXPECT_NEAR(r.metadata_ratio(), 0.01, 1e-6);
  EXPECT_DOUBLE_EQ(r.throughput_ratio(), 0.4);
  EXPECT_NEAR(r.dad_bytes(), (75 << 20) / 750.0, 1e-6);
}

TEST(ExperimentResult, ZeroSafe) {
  ExperimentResult r;
  EXPECT_EQ(r.data_only_der(), 0.0);
  EXPECT_EQ(r.real_der(), 0.0);
  EXPECT_EQ(r.metadata_ratio(), 0.0);
  EXPECT_EQ(r.throughput_ratio(), 0.0);
  EXPECT_EQ(r.dad_bytes(), 0.0);
}

TEST(Summarize, FillsFromEngineRun) {
  MemoryBackend backend;
  ObjectStore store(backend);
  EngineConfig cfg;
  cfg.ecs = 512;
  cfg.sd = 8;
  cfg.bloom_bytes = 64 * 1024;
  CdcEngine engine(store, cfg);
  const ByteVec data = random_bytes(100000, 1);
  const std::vector<NamedFile> files = {{"a", data}, {"b", data}};
  testutil::run_files(engine, files);

  const DiskModel disk;
  const auto r = summarize("CDC", engine, backend, disk);
  EXPECT_EQ(r.algorithm, "CDC");
  EXPECT_EQ(r.ecs, 512u);
  EXPECT_EQ(r.input_bytes, 2 * data.size());
  EXPECT_EQ(r.stored_data_bytes, backend.content_bytes(Ns::kDiskChunk));
  EXPECT_NEAR(r.data_only_der(), 2.0, 0.01);
  EXPECT_GT(r.metadata_ratio(), 0.0);
  EXPECT_GT(r.dedup_seconds, 0.0);
  EXPECT_GT(r.copy_seconds, 0.0);
  // Dedup pays per-access seeks, so it is slower than a plain copy here.
  EXPECT_LT(r.throughput_ratio(), 1.0);
}

}  // namespace
}  // namespace mhd
