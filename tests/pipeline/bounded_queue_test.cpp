#include "mhd/pipeline/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace mhd {
namespace {

TEST(BoundedQueue, FifoSingleThread) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i));
  q.close();
  int v = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.pop(v));  // closed and drained
}

TEST(BoundedQueue, PushAfterCloseIsRejected) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  q.close();
  EXPECT_FALSE(q.push(2));
  int v = 0;
  EXPECT_TRUE(q.pop(v));  // the pre-close item still drains
  EXPECT_EQ(v, 1);
  EXPECT_FALSE(q.pop(v));
}

TEST(BoundedQueue, ZeroCapacityIsClampedToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
}

// Capacity-1 queue: the producer can only ever be one item ahead of the
// consumer, so after both finish, every push must have been matched by a
// pop before the next push could proceed (strict backpressure).
TEST(BoundedQueue, CapacityOneBackpressure) {
  BoundedQueue<int> q(1);
  constexpr int kItems = 10000;
  std::atomic<int> max_depth{0};

  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      ASSERT_TRUE(q.push(i));
      const int depth = static_cast<int>(q.size());
      int seen = max_depth.load();
      while (depth > seen && !max_depth.compare_exchange_weak(seen, depth)) {
      }
    }
    q.close();
  });

  std::vector<int> got;
  got.reserve(kItems);
  int v;
  while (q.pop(v)) got.push_back(v);
  producer.join();

  ASSERT_EQ(got.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(got[i], i);
  EXPECT_LE(max_depth.load(), 1);
  EXPECT_EQ(q.high_water(), 1u);
}

// Multi-producer / multi-consumer stress: every pushed value arrives
// exactly once across all consumers.
TEST(BoundedQueue, MpmcStress) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 25000;
  BoundedQueue<int> q(64);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }

  std::vector<std::vector<int>> received(kConsumers);
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      int v;
      while (q.pop(v)) received[c].push_back(v);
    });
  }

  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  std::vector<bool> seen(kProducers * kPerProducer, false);
  std::size_t total = 0;
  for (const auto& r : received) {
    for (const int v : r) {
      ASSERT_GE(v, 0);
      ASSERT_LT(v, kProducers * kPerProducer);
      ASSERT_FALSE(seen[static_cast<std::size_t>(v)])
          << "duplicate delivery of " << v;
      seen[static_cast<std::size_t>(v)] = true;
      ++total;
    }
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kProducers * kPerProducer));
  EXPECT_LE(q.high_water(), 64u);
}

// close() must wake a consumer that is already blocked in pop().
TEST(BoundedQueue, ShutdownWakesBlockedConsumer) {
  BoundedQueue<int> q(4);
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    int v;
    EXPECT_FALSE(q.pop(v));
    returned = true;
  });
  // Give the consumer a moment to block (not strictly required for
  // correctness — close() is a no-lost-wakeup barrier either way).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  q.close();
  consumer.join();
  EXPECT_TRUE(returned.load());
}

// close() must wake a producer blocked on a full queue.
TEST(BoundedQueue, ShutdownWakesBlockedProducer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));  // fill it
  std::atomic<bool> rejected{false};
  std::thread producer([&] {
    if (!q.push(2)) rejected = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(rejected.load());
  q.close();
  producer.join();
  EXPECT_TRUE(rejected.load());
}

// fail() rethrows the stage's exception on every blocked or future
// push/pop — the cross-thread propagation path the pipeline relies on.
TEST(BoundedQueue, FailPropagatesExceptionToBlockedPop) {
  BoundedQueue<int> q(4);
  std::atomic<bool> caught{false};
  std::thread consumer([&] {
    int v;
    try {
      q.pop(v);
    } catch (const std::runtime_error& e) {
      caught = std::string(e.what()) == "stage exploded";
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.fail(std::make_exception_ptr(std::runtime_error("stage exploded")));
  consumer.join();
  EXPECT_TRUE(caught.load());
}

TEST(BoundedQueue, FailPropagatesExceptionToSubsequentOps) {
  BoundedQueue<int> q(2);
  ASSERT_TRUE(q.push(7));  // queued before the failure
  q.fail(std::make_exception_ptr(std::runtime_error("boom")));
  int v;
  // Abort semantics: even queued items are not delivered after fail().
  EXPECT_THROW(q.pop(v), std::runtime_error);
  EXPECT_THROW(q.push(8), std::runtime_error);
}

TEST(BoundedQueue, FailWithNullErrorDegradesToClose) {
  BoundedQueue<int> q(2);
  ASSERT_TRUE(q.push(1));
  q.fail(nullptr);
  int v;
  EXPECT_TRUE(q.pop(v));  // drains like close()
  EXPECT_FALSE(q.pop(v));
}

TEST(BoundedQueue, FirstFailureWins) {
  BoundedQueue<int> q(2);
  q.fail(std::make_exception_ptr(std::runtime_error("first")));
  q.fail(std::make_exception_ptr(std::logic_error("second")));
  int v;
  try {
    q.pop(v);
    FAIL() << "pop should rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  } catch (...) {
    FAIL() << "wrong exception type (second fail() overwrote the first)";
  }
}

TEST(BoundedQueue, HighWaterTracksDeepestFill) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.push(i));
  int v;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.pop(v));
  ASSERT_TRUE(q.push(99));
  EXPECT_EQ(q.high_water(), 5u);
}

}  // namespace
}  // namespace mhd
