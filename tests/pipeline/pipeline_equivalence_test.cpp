// The pipeline determinism contract, enforced: for every engine and
// chunker configuration, pipelined ingest (1, 2 and 8 hash workers) must
// produce BYTE-IDENTICAL repository state — every DiskChunk, Hook,
// Manifest and FileManifest — and identical dedup counters vs. the serial
// path. Any reorder-buffer bug, dropped chunk, or out-of-order delivery
// shows up here as a concrete object diff, not a flaky ratio.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "mhd/sim/runner.h"
#include "mhd/store/memory_backend.h"
#include "mhd/workload/presets.h"

namespace mhd {
namespace {

struct ChunkerCase {
  const char* label;
  ChunkerKind kind;
  ChunkerImpl impl;
};

// Kinds × scan kernels: rabin/tttd are scalar-only; gear is the SIMD
// dispatch case, covered with both the forced-scalar and the auto
// (SIMD-when-available) kernel.
const std::vector<ChunkerCase>& chunker_cases() {
  static const std::vector<ChunkerCase> cases = {
      {"rabin", ChunkerKind::kRabin, ChunkerImpl::kScalar},
      {"tttd", ChunkerKind::kTttd, ChunkerImpl::kScalar},
      {"gear-scalar", ChunkerKind::kGear, ChunkerImpl::kScalar},
      {"gear-auto", ChunkerKind::kGear, ChunkerImpl::kAuto},
  };
  return cases;
}

std::vector<std::string> all_engines() {
  std::vector<std::string> names = engine_names();
  for (const auto& n : extension_engine_names()) names.push_back(n);
  return names;
}

/// Full repository image: every object of every namespace, byte for byte.
using Snapshot = std::map<std::pair<int, std::string>, ByteVec>;

Snapshot snapshot(const MemoryBackend& backend) {
  Snapshot s;
  for (int ns = 0; ns < static_cast<int>(Ns::kCount); ++ns) {
    for (const auto& name : backend.list(static_cast<Ns>(ns))) {
      auto data = backend.get(static_cast<Ns>(ns), name);
      if (!data.has_value()) {
        ADD_FAILURE() << "listed object has no content: " << name;
        continue;
      }
      s.emplace(std::make_pair(ns, name), std::move(*data));
    }
  }
  return s;
}

RunSpec make_spec(const std::string& algo, const ChunkerCase& cc,
                  std::uint32_t ingest_threads) {
  RunSpec spec;
  spec.algorithm = algo;
  spec.engine.ecs = 1024;
  spec.engine.sd = 8;
  spec.engine.chunker = cc.kind;
  spec.engine.chunker_impl = cc.impl;
  spec.engine.ingest_threads = ingest_threads;
  return spec;
}

void expect_equal_counters(const EngineCounters& a, const EngineCounters& b,
                           const std::string& what) {
  EXPECT_EQ(a.input_bytes, b.input_bytes) << what;
  EXPECT_EQ(a.input_files, b.input_files) << what;
  EXPECT_EQ(a.input_chunks, b.input_chunks) << what;
  EXPECT_EQ(a.dup_chunks, b.dup_chunks) << what;
  EXPECT_EQ(a.dup_bytes, b.dup_bytes) << what;
  EXPECT_EQ(a.dup_slices, b.dup_slices) << what;
  EXPECT_EQ(a.stored_chunks, b.stored_chunks) << what;
  EXPECT_EQ(a.files_with_data, b.files_with_data) << what;
  EXPECT_EQ(a.hhr_operations, b.hhr_operations) << what;
  EXPECT_EQ(a.hhr_chunk_reloads, b.hhr_chunk_reloads) << what;
  EXPECT_EQ(a.shm_merged_hashes, b.shm_merged_hashes) << what;
}

void expect_equal_snapshots(const Snapshot& a, const Snapshot& b,
                            const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what << ": object count differs";
  auto ia = a.begin();
  auto ib = b.begin();
  for (; ia != a.end(); ++ia, ++ib) {
    ASSERT_EQ(ia->first, ib->first)
        << what << ": object name mismatch in "
        << ns_name(static_cast<Ns>(ia->first.first));
    ASSERT_TRUE(equal(ia->second, ib->second))
        << what << ": content differs for "
        << ns_name(static_cast<Ns>(ia->first.first)) << "/"
        << ia->first.second;
  }
}

TEST(PipelineEquivalence, EveryEngineEveryChunkerEveryPoolSize) {
  const Corpus corpus(test_preset(91));
  for (const auto& algo : all_engines()) {
    for (const auto& cc : chunker_cases()) {
      MemoryBackend serial_backend;
      const auto serial =
          run_experiment(make_spec(algo, cc, 0), corpus, serial_backend);
      Snapshot serial_snap = snapshot(serial_backend);
      ASSERT_FALSE(serial_snap.empty());

      for (const std::uint32_t workers : {1u, 2u, 8u}) {
        const std::string what =
            algo + "/" + cc.label + "/workers=" + std::to_string(workers);
        SCOPED_TRACE(what);
        MemoryBackend piped_backend;
        const auto piped = run_experiment(make_spec(algo, cc, workers),
                                          corpus, piped_backend);
        expect_equal_counters(serial.counters, piped.counters, what);
        EXPECT_EQ(serial.stored_data_bytes, piped.stored_data_bytes) << what;
        EXPECT_EQ(serial.metadata.total_bytes(), piped.metadata.total_bytes())
            << what;
        EXPECT_EQ(serial.manifest_loads, piped.manifest_loads) << what;
        expect_equal_snapshots(serial_snap, snapshot(piped_backend), what);
      }
    }
  }
}

// Pipelined runs must populate per-stage observability; serial runs must
// not (the stats vector doubles as the "did the pipeline actually run"
// signal in the JSON export).
TEST(PipelineEquivalence, StageStatsOnlyWhenPipelined) {
  const Corpus corpus(test_preset(92));
  MemoryBackend b1;
  const auto serial = run_experiment(make_spec("cdc", chunker_cases()[0], 0),
                                     corpus, b1);
  EXPECT_TRUE(serial.pipeline.empty());
  EXPECT_EQ(serial.ingest_threads, 0u);

  MemoryBackend b2;
  const auto piped = run_experiment(make_spec("cdc", chunker_cases()[0], 3),
                                    corpus, b2);
  EXPECT_EQ(piped.ingest_threads, 3u);
  ASSERT_FALSE(piped.pipeline.empty());
  EXPECT_EQ(piped.pipeline.hash_workers, 3u);
  EXPECT_EQ(piped.pipeline.files, corpus.files().size());
  ASSERT_EQ(piped.pipeline.stages.size(), 4u);
  EXPECT_EQ(piped.pipeline.stages[0].stage, "read");
  EXPECT_EQ(piped.pipeline.stages[1].stage, "chunk");
  EXPECT_EQ(piped.pipeline.stages[2].stage, "hash");
  EXPECT_EQ(piped.pipeline.stages[3].stage, "dedup");
  // Chunk, hash and dedup stages all saw every chunk and every byte.
  const auto& chunk = piped.pipeline.stages[1];
  const auto& hash = piped.pipeline.stages[2];
  const auto& dedup = piped.pipeline.stages[3];
  EXPECT_EQ(chunk.items, piped.counters.input_chunks);
  EXPECT_EQ(hash.items, piped.counters.input_chunks);
  EXPECT_EQ(dedup.items, piped.counters.input_chunks);
  EXPECT_EQ(hash.bytes, piped.counters.input_bytes);
  EXPECT_EQ(hash.threads, 3u);
  // The read stage saw the whole input.
  EXPECT_EQ(piped.pipeline.stages[0].bytes, piped.counters.input_bytes);
}

// A source that fails mid-file: the read stage's exception must surface
// on the ingesting thread as the original exception, not a hang or crash.
class ExplodingSource final : public ByteSource {
 public:
  std::size_t read(MutByteSpan out) override {
    if (calls_++ >= 2) throw std::runtime_error("disk on fire");
    std::fill(out.begin(), out.end(), Byte{0x5a});
    return out.size();
  }

 private:
  int calls_ = 0;
};

TEST(PipelineEquivalence, SourceFailurePropagatesToCaller) {
  MemoryBackend backend;
  ObjectStore store(backend);
  EngineConfig cfg;
  cfg.ingest_threads = 4;
  const auto engine = make_engine("cdc", store, cfg);
  ExplodingSource src;
  EXPECT_THROW(engine->add_file("doomed.img", src), std::runtime_error);
}

// Abandoning a pipelined ingest mid-stream (engine thread throws while
// stages are still running) must tear down cleanly — no deadlock, no
// leaked threads blocking destruction.
TEST(PipelineEquivalence, MidStreamAbandonmentShutsDownCleanly) {
  const Corpus corpus(test_preset(93));
  MemoryBackend backend;
  ObjectStore store(backend);
  EngineConfig cfg;
  cfg.ingest_threads = 8;
  cfg.pipeline_queue_depth = 2;  // force stages to be blocked on pushes
  auto engine = make_engine("sparseindexing", store, cfg);
  auto src = corpus.open(0);

  class TruncatingSource final : public ByteSource {
   public:
    TruncatingSource(ByteSource& inner, std::size_t limit)
        : inner_(inner), limit_(limit) {}
    std::size_t read(MutByteSpan out) override {
      if (served_ >= limit_) throw std::logic_error("cut");
      const std::size_t n = inner_.read(out);
      served_ += n;
      return n;
    }

   private:
    ByteSource& inner_;
    std::size_t limit_;
    std::size_t served_ = 0;
  } truncated(*src, 64 << 10);

  EXPECT_THROW(engine->add_file(corpus.files()[0].name, truncated),
               std::logic_error);
  // The engine object (and any pipeline it started) must destruct cleanly
  // here; a stuck stage thread would hang the test.
}

}  // namespace
}  // namespace mhd
