#include "mhd/dedup/bimodal_engine.h"

#include <gtest/gtest.h>

#include "engine_test_util.h"
#include "mhd/store/memory_backend.h"
#include "mhd/workload/presets.h"

namespace mhd {
namespace {

using testutil::NamedFile;
using testutil::random_bytes;

EngineConfig small_config() {
  EngineConfig cfg;
  cfg.ecs = 512;
  cfg.sd = 8;  // big chunks expected at 4 KB
  cfg.bloom_bytes = 64 * 1024;
  return cfg;
}

TEST(BimodalEngine, ReconstructsSingleFile) {
  MemoryBackend backend;
  ObjectStore store(backend);
  BimodalEngine engine(store, small_config());
  const std::vector<NamedFile> files = {{"a.img", random_bytes(200000, 1)}};
  testutil::run_files(engine, files);
  testutil::expect_reconstructs(engine, files);
}

TEST(BimodalEngine, IdenticalSecondFileDeduplicatesAtBigGranularity) {
  MemoryBackend backend;
  ObjectStore store(backend);
  BimodalEngine engine(store, small_config());
  const ByteVec data = random_bytes(300000, 2);
  const std::vector<NamedFile> files = {{"a", data}, {"b", data}};
  testutil::run_files(engine, files);
  testutil::expect_reconstructs(engine, files);
  EXPECT_EQ(engine.counters().dup_bytes, data.size());
  EXPECT_EQ(backend.content_bytes(Ns::kDiskChunk), data.size());
}

TEST(BimodalEngine, TransitionPointsAreReChunked) {
  MemoryBackend backend;
  ObjectStore store(backend);
  BimodalEngine engine(store, small_config());
  // b = a with a small edit: big chunks at the edit are non-duplicate and
  // adjacent to duplicates, so they are re-chunked small and the flanks of
  // the edit inside those big chunks are recovered.
  ByteVec a = random_bytes(300000, 3);
  ByteVec b = a;
  const ByteVec patch = random_bytes(1000, 4);
  std::copy(patch.begin(), patch.end(), b.begin() + 150000);
  const std::vector<NamedFile> files = {{"a", a}, {"b", b}};
  testutil::run_files(engine, files);
  testutil::expect_reconstructs(engine, files);
  // More duplicate found than big-chunk-only dedup would allow: the edit
  // region's big chunk is ~4KB expected, but stored bytes for b must be
  // well under two max-size big chunks.
  EXPECT_GT(engine.counters().dup_bytes, 250000u);
}

TEST(BimodalEngine, MissesInteriorDuplicateAwayFromTransitions) {
  // The known Bimodal weakness (paper Section V-B): duplicate data strictly
  // inside a run of non-duplicate big chunks is missed. Interleave unique
  // content so no big chunk is duplicate, then reuse a small interior piece.
  MemoryBackend backend;
  ObjectStore store(backend);
  EngineConfig cfg = small_config();
  cfg.use_bloom = true;
  BimodalEngine engine(store, cfg);
  ByteVec a = random_bytes(200000, 5);
  // b: unique prefix + small piece of a + unique suffix (piece smaller
  // than a big chunk, surrounded by non-duplicates).
  ByteVec b = random_bytes(80000, 6);
  append(b, ByteSpan(a.data() + 50000, 3000));
  append(b, random_bytes(80000, 7));
  const std::vector<NamedFile> files = {{"a", a}, {"b", b}};
  testutil::run_files(engine, files);
  testutil::expect_reconstructs(engine, files);
  EXPECT_EQ(engine.counters().dup_bytes, 0u);
}

TEST(BimodalEngine, HooksPerStoredChunk) {
  MemoryBackend backend;
  ObjectStore store(backend);
  BimodalEngine engine(store, small_config());
  const std::vector<NamedFile> files = {{"a", random_bytes(150000, 8)}};
  testutil::run_files(engine, files);
  EXPECT_EQ(backend.object_count(Ns::kHook), engine.counters().stored_chunks);
}

TEST(BimodalEngine, CorpusReconstructs) {
  MemoryBackend backend;
  ObjectStore store(backend);
  BimodalEngine engine(store, small_config());
  const Corpus corpus(test_preset(9));
  testutil::run_corpus(engine, corpus);
  testutil::expect_reconstructs_corpus(engine, corpus);
  EXPECT_LT(backend.content_bytes(Ns::kDiskChunk), corpus.total_bytes());
}

TEST(BimodalEngine, EmptyFileHandled) {
  MemoryBackend backend;
  ObjectStore store(backend);
  BimodalEngine engine(store, small_config());
  const std::vector<NamedFile> files = {{"empty", {}}};
  testutil::run_files(engine, files);
  testutil::expect_reconstructs(engine, files);
}

}  // namespace
}  // namespace mhd
