#include "mhd/dedup/sparse_index_engine.h"

#include <gtest/gtest.h>

#include "engine_test_util.h"
#include "mhd/store/memory_backend.h"
#include "mhd/workload/presets.h"

namespace mhd {
namespace {

using testutil::NamedFile;
using testutil::random_bytes;

EngineConfig small_config() {
  EngineConfig cfg;
  cfg.ecs = 512;
  cfg.sd = 4;             // sample 1/4 of hashes as hooks
  cfg.segment_factor = 5; // segments of ~10 KB
  cfg.bloom_bytes = 64 * 1024;
  return cfg;
}

TEST(SparseIndexEngine, ReconstructsSingleFile) {
  MemoryBackend backend;
  ObjectStore store(backend);
  SparseIndexEngine engine(store, small_config());
  const std::vector<NamedFile> files = {{"a.img", random_bytes(200000, 1)}};
  testutil::run_files(engine, files);
  testutil::expect_reconstructs(engine, files);
}

TEST(SparseIndexEngine, IdenticalSecondFileDeduplicates) {
  MemoryBackend backend;
  ObjectStore store(backend);
  SparseIndexEngine engine(store, small_config());
  const ByteVec data = random_bytes(250000, 2);
  const std::vector<NamedFile> files = {{"a", data}, {"b", data}};
  testutil::run_files(engine, files);
  testutil::expect_reconstructs(engine, files);
  // Sampling means detection is probabilistic per segment, but with 1/4
  // hook sampling virtually every segment finds its champion.
  EXPECT_GT(engine.counters().dup_bytes, data.size() * 9 / 10);
}

TEST(SparseIndexEngine, SegmentManifestsRecordDuplicatesToo) {
  MemoryBackend backend;
  ObjectStore store(backend);
  SparseIndexEngine engine(store, small_config());
  const ByteVec data = random_bytes(150000, 3);
  const std::vector<NamedFile> files = {{"a", data}, {"b", data}};
  testutil::run_files(engine, files);
  // Manifest bytes grow with the *input*, not with unique data: the fully
  // duplicate second file still wrote its own segment manifests.
  const std::uint64_t manifests = backend.object_count(Ns::kManifest);
  EXPECT_GE(manifests, 2u * (150000 / (512 * 4 * 5)));
}

TEST(SparseIndexEngine, SparseIndexRamIsSmallFractionOfInput) {
  MemoryBackend backend;
  ObjectStore store(backend);
  SparseIndexEngine engine(store, small_config());
  const Corpus corpus(test_preset(4));
  testutil::run_corpus(engine, corpus);
  EXPECT_GT(engine.index_ram_bytes(), 0u);
  // TABLE III: sparse index around 0.01%..a few % of input at small scale.
  EXPECT_LT(engine.index_ram_bytes(), corpus.total_bytes() / 10);
}

TEST(SparseIndexEngine, CorpusReconstructsAndDeduplicates) {
  MemoryBackend backend;
  ObjectStore store(backend);
  SparseIndexEngine engine(store, small_config());
  const Corpus corpus(test_preset(5));
  testutil::run_corpus(engine, corpus);
  testutil::expect_reconstructs_corpus(engine, corpus);
  EXPECT_LT(backend.content_bytes(Ns::kDiskChunk), corpus.total_bytes() / 2);
}

TEST(SparseIndexEngine, ChampionCapBoundsManifestLoadsPerSegment) {
  MemoryBackend backend;
  ObjectStore store(backend);
  EngineConfig cfg = small_config();
  cfg.max_champions = 2;
  SparseIndexEngine engine(store, cfg);
  const Corpus corpus(test_preset(6));
  testutil::run_corpus(engine, corpus);
  // Loads can never exceed champions * segments processed.
  const std::uint64_t segment_bytes =
      static_cast<std::uint64_t>(cfg.ecs) * cfg.sd * cfg.segment_factor;
  const std::uint64_t segments =
      corpus.total_bytes() / segment_bytes + corpus.files().size();
  EXPECT_LE(engine.manifest_loads(), segments * cfg.max_champions);
}

TEST(SparseIndexEngine, EmptyFileHandled) {
  MemoryBackend backend;
  ObjectStore store(backend);
  SparseIndexEngine engine(store, small_config());
  const std::vector<NamedFile> files = {{"empty", {}}};
  testutil::run_files(engine, files);
  testutil::expect_reconstructs(engine, files);
}

}  // namespace
}  // namespace mhd
