// Fault injection and resource-starvation tests: engines must stay
// correct (byte-exact restores, no crashes) when metadata is corrupted or
// caches are pathologically small — losing only deduplication
// opportunities, never data.
#include <gtest/gtest.h>

#include "engine_test_util.h"
#include "mhd/core/mhd_engine.h"
#include "mhd/dedup/cdc_engine.h"
#include "mhd/sim/runner.h"
#include "mhd/store/framed_backend.h"
#include "mhd/store/framing.h"
#include "mhd/store/memory_backend.h"
#include "mhd/workload/presets.h"

namespace mhd {
namespace {

using testutil::NamedFile;
using testutil::random_bytes;

EngineConfig small_config() {
  EngineConfig cfg;
  cfg.ecs = 512;
  cfg.sd = 8;
  cfg.bloom_bytes = 64 * 1024;
  return cfg;
}

TEST(FaultInjection, CorruptedHookPayloadsAreIgnored) {
  MemoryBackend backend;
  const ByteVec data = random_bytes(120000, 1);
  {
    ObjectStore store(backend);
    MhdEngine engine(store, small_config());
    MemorySource src(data);
    engine.add_file("a", src);
    engine.finish();
  }
  // Truncate every hook payload (invalid manifest addresses).
  for (const auto& name : backend.list(Ns::kHook)) {
    backend.put(Ns::kHook, name, ByteVec{0x01, 0x02});
  }
  ObjectStore store2(backend);
  MhdEngine engine2(store2, small_config());
  MemorySource src(data);
  engine2.add_file("b", src);  // must not crash; dedup may degrade
  engine2.finish();
  const auto ra = engine2.reconstruct("a");
  const auto rb = engine2.reconstruct("b");
  ASSERT_TRUE(ra.has_value());
  ASSERT_TRUE(rb.has_value());
  EXPECT_TRUE(equal(*ra, data));
  EXPECT_TRUE(equal(*rb, data));
}

TEST(FaultInjection, TruncatedManifestIsTreatedAsAbsent) {
  MemoryBackend backend;
  const ByteVec data = random_bytes(120000, 2);
  {
    ObjectStore store(backend);
    CdcEngine engine(store, small_config());
    MemorySource src(data);
    engine.add_file("a", src);
    engine.finish();
  }
  for (const auto& name : backend.list(Ns::kManifest)) {
    auto raw = *backend.get(Ns::kManifest, name);
    raw.resize(raw.size() / 3);
    backend.put(Ns::kManifest, name, raw);
  }
  ObjectStore store2(backend);
  CdcEngine engine2(store2, small_config());
  MemorySource src(data);
  engine2.add_file("b", src);  // hook hit -> manifest parse fails -> store
  engine2.finish();
  const auto rb = engine2.reconstruct("b");
  ASSERT_TRUE(rb.has_value());
  EXPECT_TRUE(equal(*rb, data));
}

TEST(FaultInjection, StarvedManifestCacheStaysCorrect) {
  // A 1-entry, 2 KB cache forces constant eviction, dirty write-back and
  // reload during MHD's extension work.
  EngineConfig cfg = small_config();
  cfg.manifest_cache_capacity = 1;
  cfg.manifest_cache_bytes = 2048;
  RunSpec spec;
  spec.algorithm = "bf-mhd";
  spec.engine = cfg;
  spec.verify = true;
  const Corpus corpus(test_preset(61));
  EXPECT_NO_THROW(run_experiment(spec, corpus));
}

TEST(FaultInjection, ExtremeConfigsStayCorrect) {
  const Corpus corpus(test_preset(62));
  for (const auto& algo : engine_names()) {
    RunSpec spec;
    spec.algorithm = algo;
    spec.engine.ecs = 256;
    spec.engine.sd = 2;  // smallest meaningful sample distance
    spec.engine.bloom_bytes = 1024;  // heavy false-positive pressure
    spec.engine.manifest_cache_capacity = 2;
    spec.verify = true;
    EXPECT_NO_THROW(run_experiment(spec, corpus)) << algo;
  }
}

TEST(FaultInjection, SparseIndexSingleManifestPerHook) {
  RunSpec spec;
  spec.algorithm = "sparseindexing";
  spec.engine = small_config();
  spec.engine.max_manifests_per_hook = 1;
  spec.engine.max_champions = 1;
  spec.verify = true;
  const Corpus corpus(test_preset(63));
  const auto r = run_experiment(spec, corpus);
  EXPECT_GT(r.counters.dup_bytes, 0u);
}

/// Flips one payload bit in every object of `ns` on the raw (framed-bytes)
/// backend, so the CRC32C trailer no longer matches.
void flip_bit_in_every(StorageBackend& raw, Ns ns) {
  for (const auto& name : raw.list(ns)) {
    auto bytes = *raw.get(ns, name);
    ASSERT_GT(bytes.size(), framing::kTrailerBytes);
    bytes[(bytes.size() - framing::kTrailerBytes) / 2] ^= 0x01;
    raw.put(ns, name, bytes);
  }
}

/// A corrupt hook on a framed store must read as a typed checksum failure
/// that the engine degrades to "no hook hit": ingest proceeds, the chunk
/// is stored as a non-duplicate, and the corruption_fallbacks metric
/// records every swallowed error. The restore path stays byte-exact.
TEST(FaultInjection, CorruptFramedHookDegradesToNonDuplicate) {
  MemoryBackend raw;
  const ByteVec data = random_bytes(120000, 3);
  {
    FramedBackend framed(raw);
    ObjectStore store(framed);
    MhdEngine engine(store, small_config());
    MemorySource src(data);
    engine.add_file("a", src);
    engine.finish();
  }
  flip_bit_in_every(raw, Ns::kHook);

  FramedBackend framed(raw);  // reopen: adoption scan tolerates the damage
  ObjectStore store(framed);
  MhdEngine engine(store, small_config());
  MemorySource src(data);
  engine.add_file("b", src);
  engine.finish();
  EXPECT_GT(engine.counters().corruption_fallbacks, 0u);
  const auto rb = engine.reconstruct("b");
  ASSERT_TRUE(rb.has_value());
  EXPECT_TRUE(equal(*rb, data));
}

/// Same contract one layer deeper: hooks are intact but every manifest
/// they point at is corrupt — the manifest load degrades instead of
/// killing the ingest, and the new file's own (fresh) metadata restores.
TEST(FaultInjection, CorruptFramedManifestDegradesToNonDuplicate) {
  MemoryBackend raw;
  const ByteVec data = random_bytes(120000, 4);
  {
    FramedBackend framed(raw);
    ObjectStore store(framed);
    CdcEngine engine(store, small_config());
    MemorySource src(data);
    engine.add_file("a", src);
    engine.finish();
  }
  flip_bit_in_every(raw, Ns::kManifest);

  FramedBackend framed(raw);
  ObjectStore store(framed);
  CdcEngine engine(store, small_config());
  MemorySource src(data);
  engine.add_file("b", src);
  engine.finish();
  EXPECT_GT(engine.counters().corruption_fallbacks, 0u);
  const auto rb = engine.reconstruct("b");
  ASSERT_TRUE(rb.has_value());
  EXPECT_TRUE(equal(*rb, data));
}

TEST(FaultInjection, ZeroByteAndOneByteFiles) {
  MemoryBackend backend;
  ObjectStore store(backend);
  MhdEngine engine(store, small_config());
  const std::vector<NamedFile> files = {
      {"zero", {}}, {"one", {0x42}}, {"zero2", {}}, {"one2", {0x42}}};
  testutil::run_files(engine, files);
  testutil::expect_reconstructs(engine, files);
}

TEST(FaultInjection, FileOfIdenticalBytes) {
  // Constant content stresses the chunker's zero-run guard and produces
  // massive intra-file duplication.
  MemoryBackend backend;
  ObjectStore store(backend);
  MhdEngine engine(store, small_config());
  const std::vector<NamedFile> files = {{"zeros", ByteVec(300000, 0)},
                                        {"ones", ByteVec(300000, 0xFF)}};
  testutil::run_files(engine, files);
  testutil::expect_reconstructs(engine, files);
  // Stored bytes far below input: the repeated max-size chunks collapse.
  EXPECT_LT(backend.content_bytes(Ns::kDiskChunk), 300000u);
}

}  // namespace
}  // namespace mhd
