#include "mhd/dedup/cdc_engine.h"

#include <gtest/gtest.h>

#include "engine_test_util.h"
#include "mhd/store/memory_backend.h"
#include "mhd/workload/presets.h"

namespace mhd {
namespace {

using testutil::NamedFile;
using testutil::random_bytes;

EngineConfig small_config() {
  EngineConfig cfg;
  cfg.ecs = 512;
  cfg.sd = 8;
  cfg.bloom_bytes = 64 * 1024;
  return cfg;
}

TEST(CdcEngine, ReconstructsSingleFile) {
  MemoryBackend backend;
  ObjectStore store(backend);
  CdcEngine engine(store, small_config());
  const std::vector<NamedFile> files = {{"a.img", random_bytes(100000, 1)}};
  testutil::run_files(engine, files);
  testutil::expect_reconstructs(engine, files);
}

TEST(CdcEngine, IdenticalSecondFileFullyDeduplicates) {
  MemoryBackend backend;
  ObjectStore store(backend);
  CdcEngine engine(store, small_config());
  const ByteVec data = random_bytes(200000, 2);
  const std::vector<NamedFile> files = {{"a.img", data}, {"b.img", data}};
  testutil::run_files(engine, files);
  testutil::expect_reconstructs(engine, files);

  const auto& c = engine.counters();
  EXPECT_EQ(c.input_files, 2u);
  // Second file stored nothing new.
  EXPECT_EQ(c.files_with_data, 1u);
  EXPECT_EQ(c.dup_bytes, data.size());
  EXPECT_EQ(c.dup_slices, 1u);
  EXPECT_EQ(backend.content_bytes(Ns::kDiskChunk), data.size());
}

TEST(CdcEngine, ShiftedCopyStillMostlyDeduplicates) {
  MemoryBackend backend;
  ObjectStore store(backend);
  CdcEngine engine(store, small_config());
  const ByteVec data = random_bytes(300000, 3);
  ByteVec shifted = random_bytes(64, 4);
  append(shifted, data);
  const std::vector<NamedFile> files = {{"a.img", data}, {"b.img", shifted}};
  testutil::run_files(engine, files);
  testutil::expect_reconstructs(engine, files);
  EXPECT_GT(engine.counters().dup_bytes, data.size() * 9 / 10);
}

TEST(CdcEngine, IntraFileDuplicationDetected) {
  MemoryBackend backend;
  ObjectStore store(backend);
  CdcEngine engine(store, small_config());
  ByteVec data = random_bytes(100000, 5);
  append(data, ByteSpan(data.data(), 50000));  // repeat the first half
  const std::vector<NamedFile> files = {{"a.img", data}};
  testutil::run_files(engine, files);
  testutil::expect_reconstructs(engine, files);
  EXPECT_GT(engine.counters().dup_bytes, 30000u);
}

TEST(CdcEngine, CountersAreConsistent) {
  MemoryBackend backend;
  ObjectStore store(backend);
  CdcEngine engine(store, small_config());
  const Corpus corpus(test_preset(6));
  testutil::run_corpus(engine, corpus);
  const auto& c = engine.counters();
  EXPECT_EQ(c.input_files, corpus.files().size());
  EXPECT_EQ(c.input_bytes, corpus.total_bytes());
  EXPECT_EQ(c.input_chunks, c.stored_chunks + c.dup_chunks);
  EXPECT_GE(c.dup_chunks, c.dup_slices);
  // One hook per stored chunk, one manifest + filemanifest per file.
  EXPECT_EQ(backend.object_count(Ns::kHook), c.stored_chunks);
  EXPECT_EQ(backend.object_count(Ns::kManifest), c.files_with_data);
  EXPECT_EQ(backend.object_count(Ns::kFileManifest), c.input_files);
  EXPECT_EQ(backend.object_count(Ns::kDiskChunk), c.files_with_data);
}

TEST(CdcEngine, CorpusReconstructsAndDeduplicates) {
  MemoryBackend backend;
  ObjectStore store(backend);
  CdcEngine engine(store, small_config());
  const Corpus corpus(test_preset(7));
  testutil::run_corpus(engine, corpus);
  testutil::expect_reconstructs_corpus(engine, corpus);
  // 4 snapshots of 4 machines with ~20% daily change must dedup well:
  // stored data noticeably below half the input.
  EXPECT_LT(backend.content_bytes(Ns::kDiskChunk), corpus.total_bytes() / 2);
}

TEST(CdcEngine, WorksWithoutBloomFilter) {
  MemoryBackend backend;
  ObjectStore store(backend);
  EngineConfig cfg = small_config();
  cfg.use_bloom = false;
  CdcEngine engine(store, cfg);
  const ByteVec data = random_bytes(100000, 8);
  const std::vector<NamedFile> files = {{"a", data}, {"b", data}};
  testutil::run_files(engine, files);
  testutil::expect_reconstructs(engine, files);
  EXPECT_EQ(engine.counters().dup_bytes, data.size());
  // Without the bloom filter every unique chunk pays a failed disk query.
  EXPECT_GT(store.stats().count(AccessKind::kSmallChunkQuery), 0u);
}

TEST(CdcEngine, BloomFilterSuppressesQueriesForNewData) {
  MemoryBackend b1, b2;
  ObjectStore s1(b1), s2(b2);
  EngineConfig with = small_config();
  EngineConfig without = small_config();
  without.use_bloom = false;
  CdcEngine e1(s1, with), e2(s2, without);
  const std::vector<NamedFile> files = {{"a", random_bytes(200000, 9)}};
  testutil::run_files(e1, files);
  testutil::run_files(e2, files);
  EXPECT_LT(s1.stats().count(AccessKind::kSmallChunkQuery),
            s2.stats().count(AccessKind::kSmallChunkQuery) / 10);
}

TEST(CdcEngine, EmptyFileHandled) {
  MemoryBackend backend;
  ObjectStore store(backend);
  CdcEngine engine(store, small_config());
  const std::vector<NamedFile> files = {{"empty.img", {}}};
  testutil::run_files(engine, files);
  testutil::expect_reconstructs(engine, files);
  EXPECT_EQ(engine.counters().files_with_data, 0u);
}

TEST(CdcEngine, ReconstructUnknownFileFails) {
  MemoryBackend backend;
  ObjectStore store(backend);
  CdcEngine engine(store, small_config());
  EXPECT_FALSE(engine.reconstruct("never-added").has_value());
}

}  // namespace
}  // namespace mhd
