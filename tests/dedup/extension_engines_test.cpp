// Tests for the related-work extension engines: FBC and Extreme Binning.
#include <gtest/gtest.h>

#include "engine_test_util.h"
#include "mhd/dedup/extreme_binning_engine.h"
#include "mhd/dedup/fbc_engine.h"
#include "mhd/sim/runner.h"
#include "mhd/store/memory_backend.h"
#include "mhd/workload/presets.h"

namespace mhd {
namespace {

using testutil::NamedFile;
using testutil::random_bytes;

EngineConfig small_config() {
  EngineConfig cfg;
  cfg.ecs = 512;
  cfg.sd = 8;
  cfg.bloom_bytes = 64 * 1024;
  return cfg;
}

TEST(FbcEngine, ReconstructsSingleFile) {
  MemoryBackend backend;
  ObjectStore store(backend);
  FbcEngine engine(store, small_config());
  const std::vector<NamedFile> files = {{"a.img", random_bytes(200000, 1)}};
  testutil::run_files(engine, files);
  testutil::expect_reconstructs(engine, files);
}

TEST(FbcEngine, IdenticalSecondFileDeduplicates) {
  MemoryBackend backend;
  ObjectStore store(backend);
  FbcEngine engine(store, small_config());
  const ByteVec data = random_bytes(250000, 2);
  const std::vector<NamedFile> files = {{"a", data}, {"b", data}};
  testutil::run_files(engine, files);
  testutil::expect_reconstructs(engine, files);
  EXPECT_EQ(engine.counters().dup_bytes, data.size());
}

TEST(FbcEngine, FrequencySketchTriggersReChunking) {
  MemoryBackend backend;
  ObjectStore store(backend);
  FbcEngine engine(store, small_config());
  // b shares an interior piece of a (no transition-point help): the
  // frequency sketch has seen a's small fingerprints once, so b's big
  // chunks containing them are re-chunked and the overlap is recovered.
  ByteVec a = random_bytes(200000, 3);
  ByteVec b = random_bytes(60000, 4);
  append(b, ByteSpan(a.data() + 40000, 80000));
  append(b, random_bytes(60000, 5));
  const std::vector<NamedFile> files = {{"a", a}, {"b", b}};
  testutil::run_files(engine, files);
  testutil::expect_reconstructs(engine, files);
  EXPECT_GT(engine.counters().dup_bytes, 50000u);
  EXPECT_GT(engine.index_ram_bytes(), 0u);
}

TEST(FbcEngine, CorpusReconstructs) {
  MemoryBackend backend;
  ObjectStore store(backend);
  FbcEngine engine(store, small_config());
  const Corpus corpus(test_preset(11));
  testutil::run_corpus(engine, corpus);
  testutil::expect_reconstructs_corpus(engine, corpus);
}

TEST(ExtremeBinning, ReconstructsSingleFile) {
  MemoryBackend backend;
  ObjectStore store(backend);
  ExtremeBinningEngine engine(store, small_config());
  const std::vector<NamedFile> files = {{"a.img", random_bytes(200000, 6)}};
  testutil::run_files(engine, files);
  testutil::expect_reconstructs(engine, files);
}

TEST(ExtremeBinning, IdenticalFileFullyDeduplicatesViaBin) {
  MemoryBackend backend;
  ObjectStore store(backend);
  ExtremeBinningEngine engine(store, small_config());
  const ByteVec data = random_bytes(250000, 7);
  const std::vector<NamedFile> files = {{"a", data}, {"b", data}};
  testutil::run_files(engine, files);
  testutil::expect_reconstructs(engine, files);
  EXPECT_EQ(engine.counters().dup_bytes, data.size());
  // Exactly one bin load (one disk access per similar file).
  EXPECT_EQ(engine.manifest_loads(), 1u);
}

TEST(ExtremeBinning, SimilarFilesShareBin) {
  MemoryBackend backend;
  ObjectStore store(backend);
  ExtremeBinningEngine engine(store, small_config());
  // b = a with a small patch: the representative (min hash) almost surely
  // survives, so b lands in a's bin and deduplicates against it.
  ByteVec a = random_bytes(300000, 8);
  ByteVec b = a;
  const ByteVec patch = random_bytes(3000, 9);
  std::copy(patch.begin(), patch.end(), b.begin() + 150000);
  const std::vector<NamedFile> files = {{"a", a}, {"b", b}};
  testutil::run_files(engine, files);
  testutil::expect_reconstructs(engine, files);
  EXPECT_GT(engine.counters().dup_bytes, 250000u);
  EXPECT_GT(engine.index_ram_bytes(), 0u);
}

TEST(ExtremeBinning, DissimilarFilesGetSeparateBins) {
  MemoryBackend backend;
  ObjectStore store(backend);
  ExtremeBinningEngine engine(store, small_config());
  const std::vector<NamedFile> files = {{"a", random_bytes(100000, 10)},
                                        {"b", random_bytes(100000, 11)}};
  testutil::run_files(engine, files);
  testutil::expect_reconstructs(engine, files);
  EXPECT_EQ(engine.counters().dup_bytes, 0u);
  EXPECT_EQ(backend.object_count(Ns::kManifest), 2u);
}

TEST(ExtremeBinning, CorpusReconstructs) {
  MemoryBackend backend;
  ObjectStore store(backend);
  ExtremeBinningEngine engine(store, small_config());
  const Corpus corpus(test_preset(12));
  testutil::run_corpus(engine, corpus);
  testutil::expect_reconstructs_corpus(engine, corpus);
}

TEST(Runner, ExtensionEnginesAvailable) {
  MemoryBackend backend;
  ObjectStore store(backend);
  for (const auto& name : extension_engine_names()) {
    auto engine = make_engine(name, store, small_config());
    ASSERT_NE(engine, nullptr) << name;
  }
}

}  // namespace
}  // namespace mhd
