#include "mhd/dedup/subchunk_engine.h"

#include <gtest/gtest.h>

#include "engine_test_util.h"
#include "mhd/store/memory_backend.h"
#include "mhd/workload/presets.h"

namespace mhd {
namespace {

using testutil::NamedFile;
using testutil::random_bytes;

EngineConfig small_config() {
  EngineConfig cfg;
  cfg.ecs = 512;
  cfg.sd = 8;
  cfg.bloom_bytes = 64 * 1024;
  return cfg;
}

TEST(SubChunkEngine, ReconstructsSingleFile) {
  MemoryBackend backend;
  ObjectStore store(backend);
  SubChunkEngine engine(store, small_config());
  const std::vector<NamedFile> files = {{"a.img", random_bytes(200000, 1)}};
  testutil::run_files(engine, files);
  testutil::expect_reconstructs(engine, files);
}

TEST(SubChunkEngine, ContainerPerBigChunk) {
  MemoryBackend backend;
  ObjectStore store(backend);
  SubChunkEngine engine(store, small_config());
  const std::vector<NamedFile> files = {{"a.img", random_bytes(200000, 2)}};
  testutil::run_files(engine, files);
  // All data unique: one container DiskChunk per big chunk (== N/SD-ish,
  // far more than the single per-file chunk of CDC/Bimodal/MHD).
  EXPECT_GT(backend.object_count(Ns::kDiskChunk), 5u);
  // One hook per file (the anchor).
  EXPECT_EQ(backend.object_count(Ns::kHook), 1u);
  EXPECT_EQ(backend.object_count(Ns::kManifest), 1u);
}

TEST(SubChunkEngine, IdenticalSecondFileFullyDeduplicates) {
  MemoryBackend backend;
  ObjectStore store(backend);
  SubChunkEngine engine(store, small_config());
  const ByteVec data = random_bytes(250000, 3);
  const std::vector<NamedFile> files = {{"a", data}, {"b", data}};
  testutil::run_files(engine, files);
  testutil::expect_reconstructs(engine, files);
  EXPECT_EQ(engine.counters().dup_bytes, data.size());
  EXPECT_EQ(backend.content_bytes(Ns::kDiskChunk), data.size());
  // Duplicate big chunks were answered at big granularity without
  // re-chunking: the second file added no containers.
  const std::uint64_t containers = backend.object_count(Ns::kDiskChunk);
  EXPECT_LE(containers, (data.size() / (512 * 8)) * 2 + 2);
}

TEST(SubChunkEngine, EditedCopyRecoversSmallDuplicates) {
  MemoryBackend backend;
  ObjectStore store(backend);
  SubChunkEngine engine(store, small_config());
  ByteVec a = random_bytes(250000, 4);
  ByteVec b = a;
  const ByteVec patch = random_bytes(2000, 5);
  std::copy(patch.begin(), patch.end(), b.begin() + 120000);
  const std::vector<NamedFile> files = {{"a", a}, {"b", b}};
  testutil::run_files(engine, files);
  testutil::expect_reconstructs(engine, files);
  // Every non-dup big chunk is re-chunked, so SubChunk recovers the
  // duplicate smalls inside the edited big chunk.
  EXPECT_GT(engine.counters().dup_bytes, 220000u);
}

TEST(SubChunkEngine, CorpusReconstructs) {
  MemoryBackend backend;
  ObjectStore store(backend);
  SubChunkEngine engine(store, small_config());
  const Corpus corpus(test_preset(6));
  testutil::run_corpus(engine, corpus);
  testutil::expect_reconstructs_corpus(engine, corpus);
}

TEST(SubChunkEngine, ManifestSurvivesCacheEviction) {
  MemoryBackend backend;
  ObjectStore store(backend);
  EngineConfig cfg = small_config();
  cfg.manifest_cache_capacity = 1;  // force evictions between files
  SubChunkEngine engine(store, cfg);
  const ByteVec a = random_bytes(150000, 7);
  const ByteVec c = random_bytes(150000, 8);
  const std::vector<NamedFile> files = {
      {"a", a}, {"b", c}, {"a2", a}};  // "a" manifest evicted before "a2"
  testutil::run_files(engine, files);
  testutil::expect_reconstructs(engine, files);
  // a2 still deduplicates against a via the on-disk hook + manifest reload.
  EXPECT_GT(engine.counters().dup_bytes, a.size() * 9 / 10);
  EXPECT_GE(engine.manifest_loads(), 1u);
}

TEST(SubChunkEngine, EmptyFileHandled) {
  MemoryBackend backend;
  ObjectStore store(backend);
  SubChunkEngine engine(store, small_config());
  const std::vector<NamedFile> files = {{"empty", {}}};
  testutil::run_files(engine, files);
  testutil::expect_reconstructs(engine, files);
  EXPECT_EQ(backend.object_count(Ns::kManifest), 0u);
}

}  // namespace
}  // namespace mhd
