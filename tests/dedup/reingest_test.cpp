// Regression tests for repository-reuse semantics: re-opened engines must
// keep detecting duplicates (bloom seeding from persisted hooks), and
// re-ingesting an existing file name must never corrupt the immutable
// DiskChunks that other manifests reference.
#include <gtest/gtest.h>

#include "engine_test_util.h"
#include "mhd/core/mhd_engine.h"
#include "mhd/dedup/cdc_engine.h"
#include "mhd/store/memory_backend.h"

namespace mhd {
namespace {

using testutil::NamedFile;
using testutil::random_bytes;

EngineConfig small_config() {
  EngineConfig cfg;
  cfg.ecs = 512;
  cfg.sd = 8;
  cfg.bloom_bytes = 64 * 1024;
  return cfg;
}

TEST(Reingest, FreshEngineDetectsDuplicatesViaSeededBloom) {
  MemoryBackend backend;
  const ByteVec data = random_bytes(150000, 1);
  {
    ObjectStore store(backend);
    MhdEngine engine(store, small_config());
    MemorySource src(data);
    engine.add_file("first", src);
    engine.finish();
  }
  // New process, same repository: the bloom filter is rebuilt from hooks,
  // so the duplicate is found instead of being silently re-stored.
  ObjectStore store2(backend);
  MhdEngine engine2(store2, small_config());
  MemorySource src(data);
  engine2.add_file("second", src);
  engine2.finish();
  EXPECT_EQ(engine2.counters().dup_bytes, data.size());
  EXPECT_EQ(backend.content_bytes(Ns::kDiskChunk), data.size());
}

TEST(Reingest, SameNameNewContentKeepsOldChunksIntact) {
  MemoryBackend backend;
  ObjectStore store(backend);
  MhdEngine engine(store, small_config());

  const ByteVec v1 = random_bytes(120000, 2);
  const ByteVec v2 = random_bytes(120000, 3);  // unrelated content
  {
    MemorySource src(v1);
    engine.add_file("vm.img", src);
  }
  // Another file dedups against v1 — its manifest references v1's chunk.
  {
    MemorySource src(v1);
    engine.add_file("copy-of-v1.img", src);
  }
  // The original name is re-ingested with different content.
  {
    MemorySource src(v2);
    engine.add_file("vm.img", src);
  }
  engine.finish();

  // Latest version of vm.img restores to v2; the dedup reference to v1
  // still restores intact (old DiskChunk untouched).
  const auto vm = engine.reconstruct("vm.img");
  ASSERT_TRUE(vm.has_value());
  EXPECT_TRUE(equal(*vm, v2));
  const auto copy = engine.reconstruct("copy-of-v1.img");
  ASSERT_TRUE(copy.has_value());
  EXPECT_TRUE(equal(*copy, v1));
}

TEST(Reingest, SameNameSameContentFullyDeduplicates) {
  MemoryBackend backend;
  ObjectStore store(backend);
  CdcEngine engine(store, small_config());
  const ByteVec data = random_bytes(100000, 4);
  for (int round = 0; round < 3; ++round) {
    MemorySource src(data);
    engine.add_file("daily.img", src);
  }
  engine.finish();
  EXPECT_EQ(backend.content_bytes(Ns::kDiskChunk), data.size());
  const auto restored = engine.reconstruct("daily.img");
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(equal(*restored, data));
}

}  // namespace
}  // namespace mhd
