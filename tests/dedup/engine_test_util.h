// Shared helpers for deduplication-engine tests: drive an engine over a
// corpus or hand-built files and check the byte-exact reconstruction
// invariant.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mhd/dedup/engine.h"
#include "mhd/util/random.h"
#include "mhd/workload/corpus.h"

namespace mhd::testutil {

struct NamedFile {
  std::string name;
  ByteVec bytes;
};

inline ByteVec random_bytes(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  ByteVec out(n);
  for (auto& b : out) b = static_cast<Byte>(rng());
  return out;
}

/// Feeds every file to the engine (in order) and calls finish().
inline void run_files(DedupEngine& engine, const std::vector<NamedFile>& files) {
  for (const auto& f : files) {
    MemorySource src(f.bytes);
    engine.add_file(f.name, src);
  }
  engine.finish();
}

/// Runs a whole corpus through the engine.
inline void run_corpus(DedupEngine& engine, const Corpus& corpus) {
  for (std::size_t i = 0; i < corpus.files().size(); ++i) {
    auto src = corpus.open(i);
    engine.add_file(corpus.files()[i].name, *src);
  }
  engine.finish();
}

/// The core invariant: every input file restores byte-exactly.
inline void expect_reconstructs(DedupEngine& engine,
                                const std::vector<NamedFile>& files) {
  for (const auto& f : files) {
    const auto restored = engine.reconstruct(f.name);
    ASSERT_TRUE(restored.has_value()) << f.name;
    ASSERT_EQ(restored->size(), f.bytes.size()) << f.name;
    EXPECT_TRUE(equal(*restored, f.bytes)) << f.name;
  }
}

inline void expect_reconstructs_corpus(DedupEngine& engine,
                                       const Corpus& corpus) {
  for (std::size_t i = 0; i < corpus.files().size(); ++i) {
    auto src = corpus.open(i);
    const ByteVec original = read_all(*src);
    const auto restored = engine.reconstruct(corpus.files()[i].name);
    ASSERT_TRUE(restored.has_value()) << corpus.files()[i].name;
    ASSERT_EQ(restored->size(), original.size()) << corpus.files()[i].name;
    EXPECT_TRUE(equal(*restored, original)) << corpus.files()[i].name;
  }
}

}  // namespace mhd::testutil
