#include "mhd/chunk/gear_chunker.h"

#include <gtest/gtest.h>

#include <map>

#include "mhd/chunk/chunk_stream.h"
#include "mhd/hash/sha1.h"
#include "mhd/util/random.h"

namespace mhd {
namespace {

ByteVec random_bytes(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  ByteVec out(n);
  for (auto& b : out) b = static_cast<Byte>(rng());
  return out;
}

std::vector<ByteVec> chunk_buffer(ByteSpan data, Chunker& chunker,
                                  std::size_t io_buf = 64 * 1024) {
  MemorySource src(data);
  ChunkStream stream(src, chunker, io_buf);
  std::vector<ByteVec> chunks;
  ByteVec c;
  while (stream.next(c)) chunks.push_back(c);
  return chunks;
}

TEST(GearChunker, ConcatenationEqualsInput) {
  const ByteVec data = random_bytes(1 << 20, 1);
  GearChunker chunker(ChunkerConfig::from_expected(1024));
  const auto chunks = chunk_buffer(data, chunker);
  ByteVec rebuilt;
  for (const auto& c : chunks) append(rebuilt, c);
  EXPECT_EQ(rebuilt, data);
}

TEST(GearChunker, RespectsBounds) {
  const ByteVec data = random_bytes(1 << 20, 2);
  const auto cfg = ChunkerConfig::from_expected(2048);
  GearChunker chunker(cfg);
  const auto chunks = chunk_buffer(data, chunker);
  ASSERT_GT(chunks.size(), 10u);
  for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {
    EXPECT_GE(chunks[i].size(), cfg.min_size);
    EXPECT_LE(chunks[i].size(), cfg.max_size);
  }
}

TEST(GearChunker, AverageNearExpected) {
  const ByteVec data = random_bytes(4 << 20, 3);
  const auto cfg = ChunkerConfig::from_expected(2048);
  GearChunker chunker(cfg);
  const auto chunks = chunk_buffer(data, chunker);
  const double avg = static_cast<double>(data.size()) / chunks.size();
  EXPECT_GT(avg, cfg.expected_size * 0.5);
  EXPECT_LT(avg, cfg.expected_size * 2.0);
}

TEST(GearChunker, NormalizationTightensDistribution) {
  // FastCDC claim: fewer tiny and fewer max-forced chunks than plain CDC.
  const ByteVec data = random_bytes(4 << 20, 4);
  const auto cfg = ChunkerConfig::from_expected(1024);
  GearChunker chunker(cfg);
  const auto chunks = chunk_buffer(data, chunker);
  std::size_t at_max = 0;
  for (const auto& c : chunks) at_max += (c.size() == cfg.max_size);
  // Forced cuts should be rare thanks to the easier post-expected mask.
  EXPECT_LT(static_cast<double>(at_max) / chunks.size(), 0.05);
}

TEST(GearChunker, DeterministicAcrossBufferSizes) {
  const ByteVec data = random_bytes(1 << 19, 5);
  GearChunker a(ChunkerConfig::from_expected(1024));
  GearChunker b(ChunkerConfig::from_expected(1024));
  EXPECT_EQ(chunk_buffer(data, a, 64 * 1024), chunk_buffer(data, b, 173));
}

TEST(GearChunker, BoundaryShiftResilience) {
  const ByteVec data = random_bytes(1 << 20, 6);
  ByteVec shifted = random_bytes(100, 7);
  append(shifted, data);

  GearChunker c1(ChunkerConfig::from_expected(1024));
  GearChunker c2(ChunkerConfig::from_expected(1024));
  const auto chunks1 = chunk_buffer(data, c1);
  const auto chunks2 = chunk_buffer(shifted, c2);

  std::map<Digest, int> hashes1;
  for (const auto& c : chunks1) hashes1[Sha1::hash(c)]++;
  std::size_t shared = 0;
  for (const auto& c : chunks2) {
    auto it = hashes1.find(Sha1::hash(c));
    if (it != hashes1.end() && it->second > 0) {
      --it->second;
      ++shared;
    }
  }
  EXPECT_GT(shared, chunks1.size() * 9 / 10);
}

TEST(GearChunker, RejectsBadConfig) {
  ChunkerConfig bad;
  bad.min_size = 0;
  bad.max_size = 10;
  EXPECT_THROW(GearChunker{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace mhd
