#include "mhd/chunk/rabin_chunker.h"

#include <gtest/gtest.h>

#include <map>

#include "mhd/chunk/chunk_stream.h"
#include "mhd/hash/sha1.h"
#include "mhd/util/random.h"

namespace mhd {
namespace {

ByteVec random_bytes(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  ByteVec out(n);
  for (auto& b : out) b = static_cast<Byte>(rng());
  return out;
}

std::vector<ByteVec> chunk_buffer(ByteSpan data, Chunker& chunker,
                                  std::size_t io_buf = 64 * 1024) {
  MemorySource src(data);
  ChunkStream stream(src, chunker, io_buf);
  std::vector<ByteVec> chunks;
  ByteVec c;
  while (stream.next(c)) chunks.push_back(c);
  return chunks;
}

TEST(ChunkerConfig, FromExpectedFollowsLbfsRatios) {
  const auto c = ChunkerConfig::from_expected(8192);
  EXPECT_EQ(c.expected_size, 8192u);
  EXPECT_EQ(c.min_size, 2048u);
  EXPECT_EQ(c.max_size, 65536u);
  // Tiny expected sizes keep a sane floor.
  EXPECT_EQ(ChunkerConfig::from_expected(128).min_size, 64u);
}

TEST(RabinChunker, ConcatenationEqualsInput) {
  const ByteVec data = random_bytes(1 << 20, 1);
  RabinChunker chunker(ChunkerConfig::from_expected(1024));
  const auto chunks = chunk_buffer(data, chunker);
  ByteVec rebuilt;
  for (const auto& c : chunks) append(rebuilt, c);
  EXPECT_EQ(rebuilt, data);
}

TEST(RabinChunker, RespectsMinAndMaxBounds) {
  const ByteVec data = random_bytes(1 << 20, 2);
  const auto cfg = ChunkerConfig::from_expected(2048);
  RabinChunker chunker(cfg);
  const auto chunks = chunk_buffer(data, chunker);
  ASSERT_GT(chunks.size(), 10u);
  for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {
    EXPECT_GE(chunks[i].size(), cfg.min_size);
    EXPECT_LE(chunks[i].size(), cfg.max_size);
  }
  // Final chunk may be short but never oversized.
  EXPECT_LE(chunks.back().size(), cfg.max_size);
}

TEST(RabinChunker, AverageNearExpected) {
  const ByteVec data = random_bytes(4 << 20, 3);
  const auto cfg = ChunkerConfig::from_expected(2048);
  RabinChunker chunker(cfg);
  const auto chunks = chunk_buffer(data, chunker);
  const double avg = static_cast<double>(data.size()) / chunks.size();
  EXPECT_GT(avg, cfg.expected_size * 0.5);
  EXPECT_LT(avg, cfg.expected_size * 2.0);
}

TEST(RabinChunker, DeterministicAcrossScansAndBufferSizes) {
  const ByteVec data = random_bytes(1 << 19, 4);
  RabinChunker a(ChunkerConfig::from_expected(1024));
  RabinChunker b(ChunkerConfig::from_expected(1024));
  const auto chunks_a = chunk_buffer(data, a, 64 * 1024);
  const auto chunks_b = chunk_buffer(data, b, 137);  // awkward buffer size
  EXPECT_EQ(chunks_a, chunks_b);
}

// The boundary-shift property that motivated CDC: prepending bytes must not
// re-cut the whole stream — almost all chunk contents reappear.
TEST(RabinChunker, BoundaryShiftResilience) {
  const ByteVec data = random_bytes(1 << 20, 5);
  ByteVec shifted = random_bytes(100, 6);  // 100-byte insertion at front
  append(shifted, data);

  RabinChunker c1(ChunkerConfig::from_expected(1024));
  RabinChunker c2(ChunkerConfig::from_expected(1024));
  const auto chunks1 = chunk_buffer(data, c1);
  const auto chunks2 = chunk_buffer(shifted, c2);

  std::map<Digest, int> hashes1;
  for (const auto& c : chunks1) hashes1[Sha1::hash(c)]++;
  std::size_t shared = 0;
  for (const auto& c : chunks2) {
    auto it = hashes1.find(Sha1::hash(c));
    if (it != hashes1.end() && it->second > 0) {
      --it->second;
      ++shared;
    }
  }
  // All but the first few chunks realign.
  EXPECT_GT(shared, chunks1.size() * 9 / 10);
}

TEST(RabinChunker, ZeroRunsDoNotDegenerate) {
  // All-zero content must not cut at every position (magic != 0).
  const ByteVec zeros(1 << 18, 0);
  const auto cfg = ChunkerConfig::from_expected(1024);
  RabinChunker chunker(cfg);
  const auto chunks = chunk_buffer(zeros, chunker);
  for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {
    EXPECT_GE(chunks[i].size(), cfg.min_size);
  }
}

TEST(RabinChunker, RejectsBadConfig) {
  ChunkerConfig bad;
  bad.min_size = 0;
  bad.max_size = 100;
  EXPECT_THROW(RabinChunker{bad}, std::invalid_argument);
  ChunkerConfig inverted = ChunkerConfig::from_expected(1024);
  inverted.max_size = inverted.min_size - 1;
  EXPECT_THROW(RabinChunker{inverted}, std::invalid_argument);
}

// Paper parameterization sweep: every ECS the evaluation uses must satisfy
// the bound/determinism invariants.
class RabinChunkerEcsTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RabinChunkerEcsTest, BoundsAndDeterminismAtEcs) {
  const std::uint32_t ecs = GetParam();
  const ByteVec data = random_bytes(2 << 20, ecs);
  const auto cfg = ChunkerConfig::from_expected(ecs);
  RabinChunker a(cfg), b(cfg);
  const auto chunks = chunk_buffer(data, a);
  EXPECT_EQ(chunks, chunk_buffer(data, b, 4096));
  for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {
    EXPECT_GE(chunks[i].size(), cfg.min_size);
    EXPECT_LE(chunks[i].size(), cfg.max_size);
  }
  const double avg = static_cast<double>(data.size()) / chunks.size();
  EXPECT_GT(avg, ecs * 0.4);
  EXPECT_LT(avg, ecs * 2.5);
}

INSTANTIATE_TEST_SUITE_P(PaperEcsSweep, RabinChunkerEcsTest,
                         ::testing::Values(512, 768, 1024, 2048, 4096, 8192));

}  // namespace
}  // namespace mhd
