#include "mhd/chunk/tttd_chunker.h"

#include <gtest/gtest.h>

#include "mhd/chunk/chunk_stream.h"
#include "mhd/chunk/rabin_chunker.h"
#include "mhd/util/random.h"

namespace mhd {
namespace {

ByteVec random_bytes(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  ByteVec out(n);
  for (auto& b : out) b = static_cast<Byte>(rng());
  return out;
}

std::vector<ByteVec> chunk_buffer(ByteSpan data, Chunker& chunker,
                                  std::size_t io_buf = 64 * 1024) {
  MemorySource src(data);
  ChunkStream stream(src, chunker, io_buf);
  std::vector<ByteVec> chunks;
  ByteVec c;
  while (stream.next(c)) chunks.push_back(c);
  return chunks;
}

TEST(TttdChunker, ConcatenationEqualsInput) {
  const ByteVec data = random_bytes(1 << 20, 1);
  TttdChunker chunker(ChunkerConfig::from_expected(1024));
  const auto chunks = chunk_buffer(data, chunker);
  ByteVec rebuilt;
  for (const auto& c : chunks) append(rebuilt, c);
  EXPECT_EQ(rebuilt, data);
}

TEST(TttdChunker, ConcatenationEqualsInputWithTinyIoBuffer) {
  // Exercises the carry-over (cut_back) path across refills.
  const ByteVec data = random_bytes(1 << 19, 2);
  TttdChunker chunker(ChunkerConfig::from_expected(1024));
  const auto chunks = chunk_buffer(data, chunker, 173);
  ByteVec rebuilt;
  for (const auto& c : chunks) append(rebuilt, c);
  EXPECT_EQ(rebuilt, data);
}

TEST(TttdChunker, RespectsBounds) {
  const ByteVec data = random_bytes(1 << 20, 3);
  const auto cfg = ChunkerConfig::from_expected(2048);
  TttdChunker chunker(cfg);
  const auto chunks = chunk_buffer(data, chunker);
  for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {
    EXPECT_GE(chunks[i].size(), cfg.min_size);
    EXPECT_LE(chunks[i].size(), cfg.max_size);
  }
}

TEST(TttdChunker, DeterministicAcrossBufferSizes) {
  const ByteVec data = random_bytes(1 << 19, 4);
  TttdChunker a(ChunkerConfig::from_expected(1024));
  TttdChunker b(ChunkerConfig::from_expected(1024));
  EXPECT_EQ(chunk_buffer(data, a, 64 * 1024), chunk_buffer(data, b, 201));
}

TEST(TttdChunker, FewerMaxSizeCutsThanPlainRabin) {
  // TTTD's backup divisor should displace most forced cuts at max_size.
  const ByteVec data = random_bytes(4 << 20, 5);
  const auto cfg = ChunkerConfig::from_expected(1024);
  RabinChunker rabin(cfg);
  TttdChunker tttd(cfg);
  const auto rc = chunk_buffer(data, rabin);
  const auto tc = chunk_buffer(data, tttd);
  auto count_at_max = [&](const std::vector<ByteVec>& chunks) {
    std::size_t n = 0;
    for (const auto& c : chunks) n += (c.size() == cfg.max_size);
    return n;
  };
  EXPECT_LE(count_at_max(tc), count_at_max(rc));
}

TEST(TttdChunker, RejectsBadConfig) {
  ChunkerConfig bad;
  bad.min_size = 0;
  bad.max_size = 10;
  EXPECT_THROW(TttdChunker{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace mhd
