// Differential / property harness for the GearChunker scan kernels.
//
// The SIMD block scan is a correctness-critical rewrite of the hottest
// loop in the system, so it is locked down from three directions:
//  1. cut-point differential: scalar vs. simd over >= 1000 randomized
//     (seed-logged) buffers, plus all-zero / periodic / boundary-
//     adversarial corpora, across several chunker geometries;
//  2. resumption differential: the same buffers re-fed through scan() in
//     pieces split at every offset modulo a prime, so the carried
//     (hash_, pos_) state is exercised at arbitrary block phases;
//  3. engine-level property: every deduplication engine must produce
//     identical dedup results (chunk population, duplicate bytes, manifest
//     entry counts) under --chunker-impl=scalar and =simd.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mhd/chunk/gear_chunker.h"
#include "mhd/sim/runner.h"
#include "mhd/util/random.h"
#include "mhd/workload/presets.h"

namespace mhd {
namespace {

ChunkerConfig config_with_impl(std::uint64_t ecs, ChunkerImpl impl) {
  ChunkerConfig cfg = ChunkerConfig::from_expected(ecs);
  cfg.impl = impl;
  return cfg;
}

/// Drives scan() over `data` fed as consecutive pieces whose boundaries
/// are the (sorted) offsets in `splits`, collecting the absolute offsets
/// of every cut point. A piece boundary mid-chunk exercises the resumable
/// scan state exactly like ChunkStream's refill does.
std::vector<std::size_t> cut_points(Chunker& chunker, ByteSpan data,
                                    const std::vector<std::size_t>& splits) {
  std::vector<std::size_t> cuts;
  std::size_t piece_start = 0;
  std::size_t split_index = 0;
  while (piece_start < data.size()) {
    std::size_t piece_end = data.size();
    while (split_index < splits.size() && splits[split_index] <= piece_start) {
      ++split_index;
    }
    if (split_index < splits.size()) {
      piece_end = std::min(piece_end, splits[split_index]);
    }
    // Within one piece, scan() may return several cuts; re-feed the rest.
    std::size_t off = piece_start;
    while (off < piece_end) {
      const auto r = chunker.scan({data.data() + off, piece_end - off});
      off += r.consumed;
      if (r.cut) cuts.push_back(off);
    }
    piece_start = piece_end;
  }
  return cuts;
}

std::vector<std::size_t> whole_buffer_cuts(Chunker& chunker, ByteSpan data) {
  return cut_points(chunker, data, {});
}

ByteVec random_bytes(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  ByteVec out(n);
  for (auto& b : out) b = static_cast<Byte>(rng());
  return out;
}

ByteVec periodic_bytes(std::size_t n, std::size_t period, std::uint64_t seed) {
  const ByteVec pattern = random_bytes(period, seed);
  ByteVec out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = pattern[i % period];
  return out;
}

void expect_identical_cuts(const ChunkerConfig& base, ByteSpan data,
                           const std::vector<std::size_t>& splits) {
  ChunkerConfig scalar_cfg = base;
  scalar_cfg.impl = ChunkerImpl::kScalar;
  ChunkerConfig simd_cfg = base;
  simd_cfg.impl = ChunkerImpl::kSimd;
  GearChunker scalar(scalar_cfg);
  GearChunker simd(simd_cfg);
  const auto ref = cut_points(scalar, data, splits);
  const auto got = cut_points(simd, data, splits);
  ASSERT_EQ(ref, got) << "scalar vs " << simd.impl_name();
}

TEST(ChunkerDifferential, ReportsDistinctImplementations) {
  GearChunker scalar(config_with_impl(1024, ChunkerImpl::kScalar));
  GearChunker simd(config_with_impl(1024, ChunkerImpl::kSimd));
  EXPECT_STREQ(scalar.impl_name(), "scalar");
  EXPECT_NE(std::string(simd.impl_name()).find("simd"), std::string::npos);
}

// Satellite requirement: >= 1k randomized buffers with logged seeds. Runs
// across several geometries, including a tight min==max-adjacent one and a
// min_size below the 64-byte gear window.
TEST(ChunkerDifferential, ThousandRandomBuffersBitIdentical) {
  struct Geometry {
    std::uint32_t min, expected, max;
  };
  const std::vector<Geometry> geometries = {
      {64, 256, 2048},    // small chunks: many cuts per buffer
      {256, 1024, 8192},  // from_expected(1024) shape
      {1000, 1024, 1100}, // all three zones inside a few blocks
      {16, 128, 1024},    // min below the 64-byte gear window
  };
  std::size_t buffers = 0;
  for (const auto& g : geometries) {
    ChunkerConfig cfg;
    cfg.min_size = g.min;
    cfg.expected_size = g.expected;
    cfg.max_size = g.max;
    for (std::uint64_t seed = 1; seed <= 260; ++seed) {
      SCOPED_TRACE(testing::Message()
                   << "seed=" << seed << " min=" << g.min << " expected="
                   << g.expected << " max=" << g.max);
      Xoshiro256 rng(seed * 7919);
      const std::size_t n = 1 + rng() % (48 * 1024);
      const ByteVec data = random_bytes(n, seed);
      expect_identical_cuts(cfg, data, {});
      ++buffers;
    }
  }
  EXPECT_GE(buffers, 1000u);
}

// Satellite requirement: buffers split at every offset mod a prime, so
// scan() resumption state is exercised at every block phase. Every split
// schedule must also match the unsplit scalar reference.
TEST(ChunkerDifferential, SplitAtEveryOffsetModPrime) {
  const ByteVec data = random_bytes(24 * 1024, 42);
  const ChunkerConfig cfg = ChunkerConfig::from_expected(1024);

  ChunkerConfig scalar_cfg = cfg;
  scalar_cfg.impl = ChunkerImpl::kScalar;
  GearChunker reference(scalar_cfg);
  const auto ref = whole_buffer_cuts(reference, data);

  for (const std::size_t prime : {3u, 61u, 257u, 1021u, 4099u}) {
    // Boundaries at every multiple of the prime: piece sizes are `prime`
    // bytes, so every offset r mod prime occurs as an intra-piece phase
    // and every multiple as a resumption point.
    std::vector<std::size_t> splits;
    for (std::size_t off = prime; off < data.size(); off += prime) {
      splits.push_back(off);
    }
    SCOPED_TRACE(testing::Message() << "prime=" << prime);
    ChunkerConfig simd_cfg = cfg;
    simd_cfg.impl = ChunkerImpl::kSimd;
    GearChunker simd(simd_cfg);
    EXPECT_EQ(cut_points(simd, data, splits), ref);

    ChunkerConfig rescan_cfg = cfg;
    rescan_cfg.impl = ChunkerImpl::kScalar;
    GearChunker scalar(rescan_cfg);
    EXPECT_EQ(cut_points(scalar, data, splits), ref);
  }
}

// Two-piece split at every single offset of a small buffer: the exhaustive
// version of the resumption property.
TEST(ChunkerDifferential, TwoPieceSplitAtEveryOffset) {
  const ByteVec data = random_bytes(4096, 7);
  const ChunkerConfig cfg = ChunkerConfig::from_expected(256);

  ChunkerConfig scalar_cfg = cfg;
  scalar_cfg.impl = ChunkerImpl::kScalar;
  GearChunker reference(scalar_cfg);
  const auto ref = whole_buffer_cuts(reference, data);

  for (std::size_t split = 0; split <= data.size(); ++split) {
    ChunkerConfig simd_cfg = cfg;
    simd_cfg.impl = ChunkerImpl::kSimd;
    GearChunker simd(simd_cfg);
    const std::vector<std::size_t> splits =
        (split == 0 || split == data.size())
            ? std::vector<std::size_t>{}
            : std::vector<std::size_t>{split};
    ASSERT_EQ(cut_points(simd, data, splits), ref) << "split=" << split;
  }
}

// All-zero input saturates the gear hash into a fixed point; depending on
// the mask this degenerates to max_size-forced cuts — the adversarial case
// for the block scan's max boundary handoff.
TEST(ChunkerDifferential, AllZeroBufferForcedCuts) {
  const ByteVec data(512 * 1024, 0);
  for (const std::uint64_t ecs : {256u, 1024u, 4096u}) {
    SCOPED_TRACE(testing::Message() << "ecs=" << ecs);
    expect_identical_cuts(ChunkerConfig::from_expected(ecs), data, {});
  }
  // Forced cuts must actually occur (the scenario is exercised, not vacuous).
  ChunkerConfig cfg = ChunkerConfig::from_expected(1024);
  cfg.impl = ChunkerImpl::kSimd;
  GearChunker simd(cfg);
  const auto cuts = whole_buffer_cuts(simd, data);
  ASSERT_FALSE(cuts.empty());
  EXPECT_EQ(cuts.front(), cfg.max_size);
}

// Periodic data hits the same hash window over and over: either a cut
// fires every period (dense-candidate stress) or never (forced-cut
// stress). Periods around the 64-byte window and the 32-byte block size
// are the interesting phases.
TEST(ChunkerDifferential, PeriodicBuffers) {
  for (const std::size_t period : {1u, 3u, 31u, 32u, 33u, 64u, 255u}) {
    for (const std::uint64_t seed : {11u, 12u, 13u}) {
      SCOPED_TRACE(testing::Message() << "period=" << period
                                      << " seed=" << seed);
      const ByteVec data = periodic_bytes(128 * 1024, period, seed);
      expect_identical_cuts(ChunkerConfig::from_expected(512), data, {});
      expect_identical_cuts(ChunkerConfig::from_expected(4096), data, {});
    }
  }
}

// Boundary-adversarial: buffers sized to land scan() calls exactly on the
// min/expected/max transitions and on block-size multiples of them.
TEST(ChunkerDifferential, BoundaryAdversarialLengthsAndSplits) {
  ChunkerConfig cfg;
  cfg.min_size = 128;
  cfg.expected_size = 160;  // expected just past min: all zones collide
  cfg.max_size = 192;
  const ByteVec data = random_bytes(16 * 1024, 99);

  std::vector<std::size_t> interesting;
  for (const std::size_t base : {128u, 160u, 192u}) {
    for (int delta = -33; delta <= 33; ++delta) {
      const std::ptrdiff_t off = static_cast<std::ptrdiff_t>(base) + delta;
      if (off > 0 && static_cast<std::size_t>(off) < data.size()) {
        interesting.push_back(static_cast<std::size_t>(off));
      }
    }
  }
  std::sort(interesting.begin(), interesting.end());
  interesting.erase(std::unique(interesting.begin(), interesting.end()),
                    interesting.end());

  expect_identical_cuts(cfg, data, {});
  expect_identical_cuts(cfg, data, interesting);

  // And with the default geometry, piece sizes straddling the block size.
  const ChunkerConfig def = ChunkerConfig::from_expected(1024);
  for (const std::size_t piece : {31u, 32u, 33u}) {
    std::vector<std::size_t> splits;
    for (std::size_t off = piece; off < data.size(); off += piece) {
      splits.push_back(off);
    }
    SCOPED_TRACE(testing::Message() << "piece=" << piece);
    expect_identical_cuts(def, data, splits);
  }
}

// Engine-level property: identical dedup ratios and manifest entry counts
// under both implementations, for every engine. Cut points being identical
// is necessary but not sufficient — this asserts nothing downstream
// branches on the implementation either.
TEST(ChunkerDifferential, EnginesProduceIdenticalResultsUnderBothImpls) {
  CorpusConfig corpus_cfg = test_preset(1234);
  corpus_cfg.machines = 2;
  corpus_cfg.snapshots = 2;
  const Corpus corpus(corpus_cfg);

  std::vector<std::string> engines = engine_names();
  const auto& extensions = extension_engine_names();
  engines.insert(engines.end(), extensions.begin(), extensions.end());

  for (const auto& engine : engines) {
    SCOPED_TRACE(engine);
    auto run = [&](ChunkerImpl impl) {
      RunSpec spec;
      spec.algorithm = engine;
      spec.engine.ecs = 1024;
      spec.engine.sd = 8;
      spec.engine.bloom_bytes = 64 * 1024;
      spec.engine.chunker = ChunkerKind::kGear;
      spec.engine.chunker_impl = impl;
      return run_experiment(spec, corpus);
    };
    const ExperimentResult scalar = run(ChunkerImpl::kScalar);
    const ExperimentResult simd = run(ChunkerImpl::kSimd);

    EXPECT_EQ(scalar.counters.input_chunks, simd.counters.input_chunks);
    EXPECT_EQ(scalar.counters.stored_chunks, simd.counters.stored_chunks);
    EXPECT_EQ(scalar.counters.dup_chunks, simd.counters.dup_chunks);
    EXPECT_EQ(scalar.counters.dup_bytes, simd.counters.dup_bytes);
    EXPECT_EQ(scalar.counters.dup_slices, simd.counters.dup_slices);
    EXPECT_EQ(scalar.stored_data_bytes, simd.stored_data_bytes);
    EXPECT_EQ(scalar.metadata.inodes_manifests, simd.metadata.inodes_manifests);
    EXPECT_EQ(scalar.metadata.manifest_bytes, simd.metadata.manifest_bytes);
    EXPECT_EQ(scalar.metadata.total_bytes(), simd.metadata.total_bytes());
    EXPECT_DOUBLE_EQ(scalar.data_only_der(), simd.data_only_der());
    // The only allowed difference is the reported kernel name.
    EXPECT_EQ(scalar.chunker_impl, "scalar");
    EXPECT_NE(simd.chunker_impl.find("simd"), std::string::npos);
  }
}

}  // namespace
}  // namespace mhd
