#include "mhd/chunk/fixed_chunker.h"

#include <gtest/gtest.h>

#include "mhd/chunk/chunk_stream.h"
#include "mhd/util/random.h"

namespace mhd {
namespace {

ByteVec random_bytes(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  ByteVec out(n);
  for (auto& b : out) b = static_cast<Byte>(rng());
  return out;
}

TEST(FixedChunker, ExactPartition) {
  const ByteVec data = random_bytes(4096, 1);
  FixedChunker chunker(1024);
  MemorySource src(data);
  ChunkStream stream(src, chunker);
  ByteVec c;
  int count = 0;
  while (stream.next(c)) {
    EXPECT_EQ(c.size(), 1024u);
    ++count;
  }
  EXPECT_EQ(count, 4);
}

TEST(FixedChunker, ShortTail) {
  const ByteVec data = random_bytes(2500, 2);
  FixedChunker chunker(1000);
  MemorySource src(data);
  ChunkStream stream(src, chunker);
  std::vector<std::size_t> sizes;
  ByteVec c;
  while (stream.next(c)) sizes.push_back(c.size());
  EXPECT_EQ(sizes, (std::vector<std::size_t>{1000, 1000, 500}));
}

TEST(FixedChunker, ConcatenationEqualsInput) {
  const ByteVec data = random_bytes(10000, 3);
  FixedChunker chunker(777);
  MemorySource src(data);
  ChunkStream stream(src, chunker, 100);  // tiny IO buffer
  ByteVec rebuilt, c;
  while (stream.next(c)) append(rebuilt, c);
  EXPECT_EQ(rebuilt, data);
}

TEST(FixedChunker, RejectsZeroSize) {
  EXPECT_THROW(FixedChunker{0}, std::invalid_argument);
}

// Demonstrates the boundary-shifting problem the paper cites: a 1-byte
// insertion breaks every downstream fixed-size chunk.
TEST(FixedChunker, BoundaryShiftBreaksAlignment) {
  const ByteVec data = random_bytes(64 * 1024, 4);
  ByteVec shifted;
  shifted.push_back(0x55);
  append(shifted, data);

  auto chunk_all = [](ByteSpan d) {
    FixedChunker chunker(1024);
    MemorySource src(d);
    ChunkStream stream(src, chunker);
    std::vector<ByteVec> out;
    ByteVec c;
    while (stream.next(c)) out.push_back(c);
    return out;
  };
  const auto a = chunk_all(data);
  const auto b = chunk_all(shifted);
  int identical = 0;
  for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    identical += (a[i] == b[i]);
  }
  EXPECT_EQ(identical, 0);
}

}  // namespace
}  // namespace mhd
