#include "mhd/chunk/chunk_stream.h"

#include <gtest/gtest.h>

#include "mhd/chunk/fixed_chunker.h"
#include "mhd/chunk/rabin_chunker.h"
#include "mhd/util/random.h"

namespace mhd {
namespace {

ByteVec random_bytes(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  ByteVec out(n);
  for (auto& b : out) b = static_cast<Byte>(rng());
  return out;
}

TEST(MemorySource, ReadsInPieces) {
  const ByteVec data = random_bytes(1000, 1);
  MemorySource src(data);
  Byte buf[300];
  ByteVec seen;
  std::size_t n;
  while ((n = src.read({buf, sizeof(buf)})) > 0) {
    seen.insert(seen.end(), buf, buf + n);
  }
  EXPECT_EQ(seen, data);
  EXPECT_EQ(src.read({buf, sizeof(buf)}), 0u);  // stays at EOF
}

TEST(ReadAll, DrainsSource) {
  const ByteVec data = random_bytes(200000, 2);
  MemorySource src(data);
  EXPECT_EQ(read_all(src), data);
}

TEST(ChunkStream, EmptyInputYieldsNoChunks) {
  MemorySource src(ByteSpan{});
  FixedChunker chunker(100);
  ChunkStream stream(src, chunker);
  ByteVec c;
  EXPECT_FALSE(stream.next(c));
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(stream.bytes_emitted(), 0u);
}

TEST(ChunkStream, BytesEmittedTracksTotal) {
  const ByteVec data = random_bytes(12345, 3);
  MemorySource src(data);
  RabinChunker chunker(ChunkerConfig::from_expected(512));
  ChunkStream stream(src, chunker);
  ByteVec c;
  while (stream.next(c)) {
  }
  EXPECT_EQ(stream.bytes_emitted(), data.size());
}

TEST(ChunkStream, SingleChunkWhenInputSmall) {
  const ByteVec data = random_bytes(50, 4);
  MemorySource src(data);
  RabinChunker chunker(ChunkerConfig::from_expected(1024));
  ChunkStream stream(src, chunker);
  ByteVec c;
  ASSERT_TRUE(stream.next(c));
  EXPECT_EQ(c, data);
  EXPECT_FALSE(stream.next(c));
}

}  // namespace
}  // namespace mhd
