#include "mhd/store/object_store.h"

#include <gtest/gtest.h>

#include "mhd/hash/sha1.h"
#include "mhd/store/memory_backend.h"

namespace mhd {
namespace {

class ObjectStoreTest : public ::testing::Test {
 protected:
  MemoryBackend backend_;
  ObjectStore store_{backend_};
};

TEST_F(ObjectStoreTest, ChunkWriterIsOneAccess) {
  {
    auto w = store_.open_chunk("c1");
    w.write(ByteVec(100, 1));
    w.write(ByteVec(50, 2));
  }  // destructor closes
  EXPECT_EQ(store_.stats().count(AccessKind::kChunkOut), 1u);
  EXPECT_EQ(store_.stats().bytes_written, 150u);
  EXPECT_EQ(backend_.content_bytes(Ns::kDiskChunk), 150u);
}

TEST_F(ObjectStoreTest, MovedFromChunkWriterDoesNotDoubleCount) {
  {
    // Engines hold writers in std::optional and emplace from open_chunk:
    // the moved-from temporary must not record a second access/byte count.
    std::optional<ChunkWriter> writer;
    writer.emplace(store_.open_chunk("moved"));
    writer->write(ByteVec(70, 3));
  }
  EXPECT_EQ(store_.stats().count(AccessKind::kChunkOut), 1u);
  EXPECT_EQ(store_.stats().bytes_written, 70u);
}

TEST_F(ObjectStoreTest, ChunkWriterCloseIdempotent) {
  auto w = store_.open_chunk("c2");
  w.write(ByteVec(10, 1));
  w.close();
  w.close();
  EXPECT_EQ(store_.stats().count(AccessKind::kChunkOut), 1u);
}

TEST_F(ObjectStoreTest, ReadChunkRangeCountsAccessAndBytes) {
  {
    auto w = store_.open_chunk("c3");
    w.write(ByteVec(100, 9));
  }
  const auto got = store_.read_chunk_range("c3", 10, 20);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->size(), 20u);
  EXPECT_EQ(store_.stats().count(AccessKind::kChunkIn), 1u);
  EXPECT_EQ(store_.stats().bytes_read, 20u);
}

TEST_F(ObjectStoreTest, HookHitCountsAsHookIn) {
  const Digest h = Sha1::hash(as_bytes("hook"));
  store_.put_hook(h, ByteVec(20, 5));
  EXPECT_EQ(store_.stats().count(AccessKind::kHookOut), 1u);

  const auto got = store_.get_hook(h, AccessKind::kSmallChunkQuery);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(store_.stats().count(AccessKind::kHookIn), 1u);
  EXPECT_EQ(store_.stats().count(AccessKind::kSmallChunkQuery), 0u);
}

TEST_F(ObjectStoreTest, HookMissCountsAsQuery) {
  const Digest h = Sha1::hash(as_bytes("missing"));
  const auto got = store_.get_hook(h, AccessKind::kSmallChunkQuery);
  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(store_.stats().count(AccessKind::kHookIn), 0u);
  EXPECT_EQ(store_.stats().count(AccessKind::kSmallChunkQuery), 1u);
}

TEST_F(ObjectStoreTest, HookExistsAlwaysCountsQuery) {
  const Digest h = Sha1::hash(as_bytes("hook2"));
  store_.put_hook(h, ByteVec(20, 5));
  EXPECT_TRUE(store_.hook_exists(h, AccessKind::kBigChunkQuery));
  EXPECT_FALSE(store_.hook_exists(Sha1::hash(as_bytes("no")),
                                  AccessKind::kBigChunkQuery));
  EXPECT_EQ(store_.stats().count(AccessKind::kBigChunkQuery), 2u);
}

TEST_F(ObjectStoreTest, ManifestRoundTripCounts) {
  store_.put_manifest("m1", ByteVec(74, 1));
  const auto got = store_.get_manifest("m1");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(store_.stats().count(AccessKind::kManifestOut), 1u);
  EXPECT_EQ(store_.stats().count(AccessKind::kManifestIn), 1u);
}

TEST_F(ObjectStoreTest, FileManifestRoundTrip) {
  store_.put_file_manifest("f1", ByteVec(32, 1));
  const auto got = store_.get_file_manifest("f1");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(store_.stats().count(AccessKind::kFileManifestOut), 1u);
  EXPECT_EQ(store_.stats().count(AccessKind::kFileManifestIn), 1u);
}

TEST(StorageStats, SummaryHelpers) {
  StorageStats s;
  s.record(AccessKind::kChunkOut, 3);
  s.record(AccessKind::kSmallChunkQuery, 5);
  s.record(AccessKind::kBigChunkQuery, 2);
  EXPECT_EQ(s.total_accesses(), 10u);
  EXPECT_EQ(s.io_accesses(), 3u);

  StorageStats t;
  t.record(AccessKind::kChunkOut, 1);
  t.bytes_read = 7;
  s += t;
  EXPECT_EQ(s.count(AccessKind::kChunkOut), 4u);
  EXPECT_EQ(s.bytes_read, 7u);
}

TEST(StorageStats, ToStringMentionsNonZeroKinds) {
  StorageStats s;
  s.record(AccessKind::kHookIn, 2);
  const std::string str = s.to_string();
  EXPECT_NE(str.find("Hook Input"), std::string::npos);
  EXPECT_EQ(str.find("Manifest Output"), std::string::npos);
}

}  // namespace
}  // namespace mhd
