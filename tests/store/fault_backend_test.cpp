// Deterministic fault injection: plan parsing, each fault kind's
// semantics, replay determinism, and the ObjectStore bounded-retry policy
// for transient read errors.
#include "mhd/store/fault_backend.h"

#include <gtest/gtest.h>

#include "mhd/store/memory_backend.h"
#include "mhd/store/object_store.h"
#include "mhd/store/store_errors.h"

namespace mhd {
namespace {

ByteVec bytes_of(const std::string& s) { return to_vec(as_bytes(s)); }

TEST(FaultPlan, ParsesFullMiniLanguage) {
  const FaultPlan plan =
      FaultPlan::parse("fail@3, torn@5:0.25, crash@9:0.5, readerr@2x4, "
                       "torn@7, readerr@11, seed:99");
  ASSERT_EQ(plan.fail_ops.size(), 1u);
  EXPECT_EQ(plan.fail_ops[0], 3u);
  ASSERT_EQ(plan.torn_ops.size(), 2u);
  EXPECT_EQ(plan.torn_ops[0].op, 5u);
  EXPECT_DOUBLE_EQ(plan.torn_ops[0].fraction, 0.25);
  EXPECT_EQ(plan.torn_ops[1].op, 7u);
  EXPECT_LT(plan.torn_ops[1].fraction, 0.0);  // drawn from seed
  ASSERT_TRUE(plan.crash.has_value());
  EXPECT_EQ(plan.crash->op, 9u);
  EXPECT_DOUBLE_EQ(plan.crash->fraction, 0.5);
  ASSERT_EQ(plan.read_errors.size(), 2u);
  EXPECT_EQ(plan.read_errors[0].first, 2u);
  EXPECT_EQ(plan.read_errors[0].count, 4u);
  EXPECT_EQ(plan.read_errors[1].count, 1u);
  EXPECT_EQ(plan.seed, 99u);
  EXPECT_FALSE(plan.empty());
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_TRUE(FaultPlan::parse("seed:7").empty());
}

TEST(FaultPlan, RejectsMalformedAtoms) {
  EXPECT_THROW(FaultPlan::parse("explode@4"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("fail@abc"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("torn@2:1.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("crash@1,crash@2"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("readerr@"), std::invalid_argument);
}

TEST(FaultBackend, FailOpThrowsAndPersistsNothing) {
  MemoryBackend raw;
  FaultInjectingBackend faulty(raw, FaultPlan::parse("fail@2"));
  faulty.put(Ns::kHook, "h0", bytes_of("first"));
  EXPECT_THROW(faulty.put(Ns::kHook, "h1", bytes_of("second")),
               BackendIoError);
  EXPECT_TRUE(raw.exists(Ns::kHook, "h0"));
  EXPECT_FALSE(raw.exists(Ns::kHook, "h1"));
  // Life goes on after a clean failure.
  faulty.put(Ns::kHook, "h2", bytes_of("third"));
  EXPECT_TRUE(raw.exists(Ns::kHook, "h2"));
  EXPECT_EQ(faulty.mutation_ops(), 3u);
}

TEST(FaultBackend, TornWritePersistsExactPrefixSilently) {
  MemoryBackend raw;
  FaultInjectingBackend faulty(raw, FaultPlan::parse("torn@1:0.5"));
  faulty.put(Ns::kDiskChunk, "c0", bytes_of("0123456789"));  // no throw
  EXPECT_EQ(raw.get(Ns::kDiskChunk, "c0"), bytes_of("01234"));
}

TEST(FaultBackend, DrawnTearFractionIsDeterministic) {
  std::uint64_t first_size = 0;
  for (int round = 0; round < 2; ++round) {
    MemoryBackend raw;
    FaultInjectingBackend faulty(raw, FaultPlan::parse("torn@1,seed:5"));
    faulty.append(Ns::kDiskChunk, "c0", ByteVec(1000, 0x42));
    const auto stored = raw.get(Ns::kDiskChunk, "c0");
    ASSERT_TRUE(stored.has_value());
    EXPECT_LT(stored->size(), 1000u);
    if (round == 0) {
      first_size = stored->size();
    } else {
      EXPECT_EQ(stored->size(), first_size);
    }
  }
}

TEST(FaultBackend, CrashStopKillsTheBackend) {
  MemoryBackend raw;
  FaultInjectingBackend faulty(raw, FaultPlan::parse("crash@2"));
  faulty.put(Ns::kHook, "h0", bytes_of("ok"));
  EXPECT_THROW(faulty.put(Ns::kHook, "h1", bytes_of("dead")), CrashStopError);
  EXPECT_TRUE(faulty.crashed());
  EXPECT_FALSE(raw.exists(Ns::kHook, "h1"));  // crash@N alone: no prefix
  EXPECT_THROW(faulty.put(Ns::kHook, "h2", bytes_of("x")), CrashStopError);
  EXPECT_THROW(faulty.get(Ns::kHook, "h0"), CrashStopError);
  EXPECT_THROW(faulty.exists(Ns::kHook, "h0"), CrashStopError);
}

TEST(FaultBackend, CrashWithTearPersistsPrefixThenDies) {
  MemoryBackend raw;
  FaultInjectingBackend faulty(raw, FaultPlan::parse("crash@1:0.3"));
  EXPECT_THROW(faulty.append(Ns::kDiskChunk, "c0", bytes_of("0123456789")),
               CrashStopError);
  EXPECT_EQ(raw.get(Ns::kDiskChunk, "c0"), bytes_of("012"));
  EXPECT_TRUE(faulty.crashed());
}

TEST(FaultBackend, ReadErrorsAreTransientAndPositional) {
  MemoryBackend raw;
  raw.put(Ns::kHook, "h0", bytes_of("payload"));
  FaultInjectingBackend faulty(raw, FaultPlan::parse("readerr@2x2"));
  EXPECT_TRUE(faulty.get(Ns::kHook, "h0").has_value());        // read 1
  EXPECT_THROW(faulty.get(Ns::kHook, "h0"), TransientReadError);  // read 2
  EXPECT_THROW(faulty.get_range(Ns::kHook, "h0", 0, 2),
               TransientReadError);                            // read 3
  EXPECT_TRUE(faulty.get(Ns::kHook, "h0").has_value());        // read 4
  EXPECT_EQ(faulty.read_ops(), 4u);
}

TEST(ObjectStoreRetry, TransientReadsAreRetriedWithBoundedAttempts) {
  MemoryBackend raw;
  raw.put(Ns::kManifest, "m0", bytes_of("manifest"));
  {
    // Two consecutive failures: the third attempt succeeds.
    FaultInjectingBackend faulty(raw, FaultPlan::parse("readerr@1x2"));
    ObjectStore store(faulty);
    const auto data = store.get_manifest("m0");
    ASSERT_TRUE(data.has_value());
    EXPECT_EQ(*data, bytes_of("manifest"));
    EXPECT_EQ(store.stats().transient_retries, 2u);
  }
  {
    // More failures than the retry budget: the typed error surfaces.
    FaultInjectingBackend faulty(raw, FaultPlan::parse("readerr@1x16"));
    ObjectStore store(faulty);
    EXPECT_THROW(store.get_manifest("m0"), TransientReadError);
    EXPECT_EQ(faulty.read_ops(), 4u);  // bounded: exactly kReadAttempts
  }
}

}  // namespace
}  // namespace mhd
