// Durability satellites: atomic put (temp+rename), short-write checking,
// get_range overflow rejection, reopen adoption across mixed mutation
// cycles, stale-temp sweeping, and ChunkWriter exception safety.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <limits>

#include "mhd/store/fault_backend.h"
#include "mhd/store/file_backend.h"
#include "mhd/store/framed_backend.h"
#include "mhd/store/memory_backend.h"
#include "mhd/store/object_store.h"
#include "mhd/store/store_errors.h"

namespace mhd {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() /
           ("mhd_durability_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    fs::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  const fs::path& path() const { return dir_; }

 private:
  static inline int counter_ = 0;
  fs::path dir_;
};

ByteVec bytes_of(const std::string& s) { return to_vec(as_bytes(s)); }

TEST(FileBackendDurability, PutLeavesNoTempAndReplacesAtomically) {
  TempDir tmp;
  FileBackend backend(tmp.path());
  backend.put(Ns::kManifest, "m0", bytes_of("version-one"));
  backend.put(Ns::kManifest, "m0", bytes_of("v2"));
  EXPECT_EQ(backend.get(Ns::kManifest, "m0"), bytes_of("v2"));
  EXPECT_EQ(backend.content_bytes(Ns::kManifest), 2u);
  EXPECT_EQ(backend.object_count(Ns::kManifest), 1u);
  // No temp debris after successful puts.
  for (const auto& entry : fs::recursive_directory_iterator(tmp.path())) {
    if (entry.is_regular_file()) {
      EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
    }
  }
}

TEST(FileBackendDurability, StaleTempIsSweptOnReopenAndNeverListed) {
  TempDir tmp;
  {
    FileBackend backend(tmp.path());
    backend.put(Ns::kManifest, "m0", bytes_of("intact"));
  }
  // Simulate a crash mid-put: a half-written temp beside the object.
  const fs::path stale = tmp.path() / "manifests" / "m0.tmp";
  std::ofstream(stale, std::ios::binary) << "half-writ";
  ASSERT_TRUE(fs::exists(stale));

  FileBackend reopened(tmp.path());
  EXPECT_FALSE(fs::exists(stale));  // swept
  EXPECT_EQ(reopened.object_count(Ns::kManifest), 1u);
  EXPECT_EQ(reopened.content_bytes(Ns::kManifest), 6u);
  EXPECT_EQ(reopened.list(Ns::kManifest),
            std::vector<std::string>{"m0"});
  EXPECT_EQ(reopened.get(Ns::kManifest, "m0"), bytes_of("intact"));
}

TEST(FileBackendDurability, ReopenAdoptsMixedMutationHistory) {
  TempDir tmp;
  {
    FileBackend backend(tmp.path());
    backend.append(Ns::kDiskChunk, "c0", bytes_of("0123"));
    backend.append(Ns::kDiskChunk, "c0", bytes_of("4567"));
    backend.append(Ns::kDiskChunk, "c1", bytes_of("abcdef"));
    backend.put(Ns::kHook, "h0", bytes_of("hook0"));
    backend.put(Ns::kHook, "h1", bytes_of("hook1!"));
    backend.put(Ns::kHook, "h1", bytes_of("h1"));     // shrink via replace
    backend.remove(Ns::kHook, "h0");
    backend.put(Ns::kManifest, "m0", bytes_of("manifest"));
    backend.remove(Ns::kDiskChunk, "c1");
    backend.append(Ns::kDiskChunk, "c2", bytes_of("zz"));
  }
  FileBackend reopened(tmp.path());
  EXPECT_EQ(reopened.object_count(Ns::kDiskChunk), 2u);
  EXPECT_EQ(reopened.content_bytes(Ns::kDiskChunk), 8u + 2u);
  EXPECT_EQ(reopened.object_count(Ns::kHook), 1u);
  EXPECT_EQ(reopened.content_bytes(Ns::kHook), 2u);
  EXPECT_EQ(reopened.object_count(Ns::kManifest), 1u);
  EXPECT_EQ(reopened.content_bytes(Ns::kManifest), 8u);
  // Counters keep tracking correctly after adoption.
  reopened.append(Ns::kDiskChunk, "c0", bytes_of("89"));
  EXPECT_EQ(reopened.content_bytes(Ns::kDiskChunk), 12u);
  EXPECT_EQ(reopened.get(Ns::kDiskChunk, "c0"), bytes_of("0123456789"));
}

TEST(BackendDurability, GetRangeRejectsOverflowingRanges) {
  TempDir tmp;
  FileBackend file(tmp.path());
  MemoryBackend mem;
  for (StorageBackend* backend : {static_cast<StorageBackend*>(&file),
                                  static_cast<StorageBackend*>(&mem)}) {
    backend->put(Ns::kDiskChunk, "c0", bytes_of("0123456789"));
    EXPECT_TRUE(backend->get_range(Ns::kDiskChunk, "c0", 0, 10).has_value());
    EXPECT_TRUE(backend->get_range(Ns::kDiskChunk, "c0", 10, 0).has_value());
    EXPECT_EQ(backend->get_range(Ns::kDiskChunk, "c0", 11, 0), std::nullopt);
    // offset + length wraps u64 to a small number; must still be rejected.
    EXPECT_EQ(backend->get_range(Ns::kDiskChunk, "c0", 2,
                                 std::numeric_limits<std::uint64_t>::max()),
              std::nullopt);
    EXPECT_EQ(backend->get_range(Ns::kDiskChunk, "c0",
                                 std::numeric_limits<std::uint64_t>::max(), 2),
              std::nullopt);
  }
}

TEST(ChunkWriterDurability, DestructorSwallowsBackendFailure) {
  MemoryBackend raw;
  // Mutation 1 = the framed append, mutation 2 = the seal-record append
  // issued by close(): the destructor must absorb that failure.
  FaultInjectingBackend faulty(raw, FaultPlan::parse("fail@2"));
  FramedBackend framed(faulty);
  ObjectStore store(framed);
  {
    ChunkWriter writer = store.open_chunk("c0");
    writer.write(bytes_of("payload"));
    // No explicit close: destructor seals, backend throws, nothing escapes.
  }
  // The stream is unsealed (the seal append failed): reads see corrupt,
  // never a silent partial answer.
  EXPECT_THROW(framed.get(Ns::kDiskChunk, "c0"), CorruptObjectError);
}

TEST(ChunkWriterDurability, ExplicitCloseSurfacesBackendFailure) {
  MemoryBackend raw;
  FaultInjectingBackend faulty(raw, FaultPlan::parse("fail@2"));
  FramedBackend framed(faulty);
  ObjectStore store(framed);
  ChunkWriter writer = store.open_chunk("c0");
  writer.write(bytes_of("payload"));
  EXPECT_THROW(writer.close(), BackendIoError);
}

TEST(ChunkWriterDurability, CloseSealsTheStream) {
  MemoryBackend raw;
  FramedBackend framed(raw);
  ObjectStore store(framed);
  {
    ChunkWriter writer = store.open_chunk("c0");
    writer.write(bytes_of("part-a"));
    writer.write(bytes_of("part-b"));
    writer.close();
    writer.close();  // idempotent: exactly one seal record
  }
  EXPECT_EQ(framed.get(Ns::kDiskChunk, "c0"), bytes_of("part-apart-b"));
  const auto range = framed.get_range(Ns::kDiskChunk, "c0", 4, 4);
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(*range, bytes_of("-apa"));
}

}  // namespace
}  // namespace mhd
