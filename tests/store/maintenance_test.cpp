#include "mhd/store/maintenance.h"

#include <gtest/gtest.h>

#include "../dedup/engine_test_util.h"
#include "mhd/core/mhd_engine.h"
#include "mhd/dedup/cdc_engine.h"
#include "mhd/sim/runner.h"
#include "mhd/store/memory_backend.h"
#include "mhd/workload/presets.h"

namespace mhd {
namespace {

using testutil::NamedFile;
using testutil::random_bytes;

EngineConfig small_config() {
  EngineConfig cfg;
  cfg.ecs = 512;
  cfg.sd = 8;
  cfg.bloom_bytes = 64 * 1024;
  return cfg;
}

TEST(Scrub, CleanRepositoryPasses) {
  MemoryBackend backend;
  {
    ObjectStore store(backend);
    MhdEngine engine(store, small_config());
    ByteVec a = random_bytes(150000, 1);
    ByteVec b = a;
    const ByteVec patch = random_bytes(5000, 2);
    std::copy(patch.begin(), patch.end(), b.begin() + 70000);
    const std::vector<NamedFile> files = {{"a", a}, {"b", b}};
    testutil::run_files(engine, files);
  }
  const auto report = scrub_repository(backend);
  EXPECT_TRUE(report.clean());
  EXPECT_GT(report.file_manifests, 0u);
  EXPECT_GT(report.manifests, 0u);
  EXPECT_GT(report.hooks, 0u);
}

TEST(Scrub, DetectsCorruptedChunkBytes) {
  MemoryBackend backend;
  {
    ObjectStore store(backend);
    MhdEngine engine(store, small_config());
    const std::vector<NamedFile> files = {{"a", random_bytes(100000, 3)}};
    testutil::run_files(engine, files);
  }
  // Flip a byte inside the stored DiskChunk.
  const auto names = backend.list(Ns::kDiskChunk);
  ASSERT_FALSE(names.empty());
  auto chunk = *backend.get(Ns::kDiskChunk, names[0]);
  chunk[chunk.size() / 2] ^= 0xFF;
  backend.put(Ns::kDiskChunk, names[0], chunk);

  const auto report = scrub_repository(backend);
  EXPECT_FALSE(report.clean());
  EXPECT_GT(report.manifest_hash_mismatches, 0u);
}

TEST(Scrub, DetectsMissingChunk) {
  MemoryBackend backend;
  {
    ObjectStore store(backend);
    CdcEngine engine(store, small_config());
    const std::vector<NamedFile> files = {{"a", random_bytes(80000, 4)}};
    testutil::run_files(engine, files);
  }
  for (const auto& name : backend.list(Ns::kDiskChunk)) {
    backend.remove(Ns::kDiskChunk, name);
  }
  const auto report = scrub_repository(backend);
  EXPECT_GT(report.broken_file_ranges, 0u);
  EXPECT_GT(report.manifest_coverage_errors, 0u);
}

TEST(Scrub, DetectsDanglingHooks) {
  MemoryBackend backend;
  {
    ObjectStore store(backend);
    MhdEngine engine(store, small_config());
    const std::vector<NamedFile> files = {{"a", random_bytes(80000, 5)}};
    testutil::run_files(engine, files);
  }
  for (const auto& name : backend.list(Ns::kManifest)) {
    backend.remove(Ns::kManifest, name);
  }
  const auto report = scrub_repository(backend);
  EXPECT_GT(report.dangling_hooks, 0u);
}

TEST(Gc, DeleteFileThenCollectReclaimsSpace) {
  MemoryBackend backend;
  const ByteVec unique1 = random_bytes(120000, 6);
  const ByteVec unique2 = random_bytes(120000, 7);
  {
    ObjectStore store(backend);
    MhdEngine engine(store, small_config());
    const std::vector<NamedFile> files = {{"keep", unique1},
                                          {"drop", unique2}};
    testutil::run_files(engine, files);
  }
  const auto before = backend.content_bytes(Ns::kDiskChunk);
  ASSERT_TRUE(delete_file(backend, "drop"));
  EXPECT_FALSE(delete_file(backend, "drop"));  // already gone
  const auto gc = collect_garbage(backend);
  EXPECT_EQ(gc.deleted_chunks, 1u);
  EXPECT_GE(gc.reclaimed_bytes, unique2.size());
  EXPECT_LT(backend.content_bytes(Ns::kDiskChunk), before);

  // The kept file still restores; the repository is clean.
  ObjectStore store2(backend);
  MhdEngine engine2(store2, small_config());
  const auto restored = engine2.reconstruct("keep");
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(equal(*restored, unique1));
  EXPECT_TRUE(scrub_repository(backend).clean());
}

TEST(Gc, SharedChunksSurviveDeletion) {
  MemoryBackend backend;
  const ByteVec shared = random_bytes(120000, 8);
  {
    ObjectStore store(backend);
    MhdEngine engine(store, small_config());
    const std::vector<NamedFile> files = {{"v1", shared}, {"v2", shared}};
    testutil::run_files(engine, files);
  }
  ASSERT_TRUE(delete_file(backend, "v1"));
  const auto gc = collect_garbage(backend);
  EXPECT_EQ(gc.deleted_chunks, 0u);  // v2 still references the data

  ObjectStore store2(backend);
  MhdEngine engine2(store2, small_config());
  const auto restored = engine2.reconstruct("v2");
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(equal(*restored, shared));
}

TEST(Gc, DedupStillWorksAfterCollection) {
  MemoryBackend backend;
  const ByteVec data = random_bytes(150000, 9);
  {
    ObjectStore store(backend);
    MhdEngine engine(store, small_config());
    const std::vector<NamedFile> files = {{"a", data}};
    testutil::run_files(engine, files);
  }
  collect_garbage(backend);  // nothing to delete; must not break state
  ObjectStore store2(backend);
  MhdEngine engine2(store2, small_config());
  MemorySource src(data);
  engine2.add_file("b", src);
  engine2.finish();
  EXPECT_EQ(engine2.counters().dup_bytes, data.size());
}

// GC across every engine family: delete half the files, collect, and the
// remaining files must still restore byte-exactly with a clean scrub.
class GcEngineTest : public ::testing::TestWithParam<std::string> {};

TEST_P(GcEngineTest, SurvivorsRestoreAfterGc) {
  MemoryBackend backend;
  CorpusConfig ccfg = test_preset(77);
  ccfg.machines = 2;
  ccfg.snapshots = 3;
  const Corpus corpus(ccfg);
  {
    ObjectStore store(backend);
    auto engine = make_engine(GetParam(), store, small_config());
    for (std::size_t i = 0; i < corpus.files().size(); ++i) {
      auto src = corpus.open(i);
      engine->add_file(corpus.files()[i].name, *src);
    }
    engine->finish();
  }
  // Drop the first day's backups.
  for (std::size_t i = 0; i < corpus.files().size(); ++i) {
    if (corpus.files()[i].snapshot == 0) {
      ASSERT_TRUE(delete_file(backend, corpus.files()[i].name));
    }
  }
  collect_garbage(backend);

  ObjectStore store2(backend);
  auto engine2 = make_engine(GetParam(), store2, small_config());
  for (std::size_t i = 0; i < corpus.files().size(); ++i) {
    if (corpus.files()[i].snapshot == 0) continue;
    auto src = corpus.open(i);
    const ByteVec original = read_all(*src);
    const auto restored = engine2->reconstruct(corpus.files()[i].name);
    ASSERT_TRUE(restored.has_value()) << corpus.files()[i].name;
    EXPECT_TRUE(equal(*restored, original)) << corpus.files()[i].name;
  }
  const auto report = scrub_repository(backend);
  EXPECT_EQ(report.broken_file_ranges, 0u);
  EXPECT_EQ(report.manifest_hash_mismatches, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, GcEngineTest,
                         ::testing::Values("bf-mhd", "cdc", "bimodal",
                                           "subchunk", "sparseindexing",
                                           "fbc", "extremebinning"));

}  // namespace
}  // namespace mhd
