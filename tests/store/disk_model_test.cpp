#include "mhd/store/disk_model.h"

#include <gtest/gtest.h>

namespace mhd {
namespace {

TEST(DiskModel, SeeksDominateSmallTransfers) {
  DiskModel model;
  StorageStats s;
  s.record(AccessKind::kHookIn, 1000);
  s.bytes_read = 1000 * 20;  // tiny hook files
  const double t = model.io_seconds(s);
  EXPECT_NEAR(t, 1000 * model.seek_seconds, 0.01);
}

TEST(DiskModel, BandwidthTermScalesWithBytes) {
  DiskModel model;
  StorageStats a, b;
  a.record(AccessKind::kChunkOut, 1);
  a.bytes_written = 100 * 1000 * 1000;
  b.record(AccessKind::kChunkOut, 1);
  b.bytes_written = 200 * 1000 * 1000;
  EXPECT_GT(model.io_seconds(b), model.io_seconds(a) * 1.8);
}

TEST(DiskModel, CopyTimeMatchesManualFormula) {
  DiskModel model;
  const std::uint64_t bytes = 50 * 1000 * 1000;
  const double expected = 2 * model.seek_seconds +
                          bytes / model.read_bw + bytes / model.write_bw;
  EXPECT_DOUBLE_EQ(model.copy_seconds(bytes), expected);
}

TEST(DiskModel, MoreAccessesNeverFaster) {
  DiskModel model;
  StorageStats few, many;
  few.record(AccessKind::kManifestIn, 10);
  many.record(AccessKind::kManifestIn, 10);
  many.record(AccessKind::kSmallChunkQuery, 100);
  EXPECT_GT(model.io_seconds(many), model.io_seconds(few));
}

}  // namespace
}  // namespace mhd
