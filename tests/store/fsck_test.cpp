// fsck_repository: detection and repair across every damage class —
// torn chunk tails (truncate + reseal), bit rot (quarantine), dangling
// hooks (drop), broken references (report only), orphans (informational).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <filesystem>
#include <fstream>

#include "mhd/format/file_manifest.h"
#include "mhd/hash/sha1.h"
#include "mhd/store/file_backend.h"
#include "mhd/store/framed_backend.h"
#include "mhd/store/framing.h"
#include "mhd/store/memory_backend.h"
#include "mhd/store/scrub.h"

namespace mhd {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() /
           ("mhd_fsck_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    fs::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  const fs::path& path() const { return dir_; }

 private:
  static inline int counter_ = 0;
  fs::path dir_;
};

ByteVec bytes_of(const std::string& s) { return to_vec(as_bytes(s)); }

/// A minimal healthy framed repository: one two-record chunk, one opaque
/// manifest, one hook targeting it, one FileManifest covering record 1.
struct Repo {
  std::string chunk, manifest, hook, file_manifest;
  ByteVec rec1, rec2;

  explicit Repo(StorageBackend& raw) {
    FramedBackend framed(raw);
    rec1 = bytes_of("first-record-payload-AAAA");
    rec2 = bytes_of("second-record-BB");
    const Digest cd = Sha1::hash(as_bytes(std::string("chunk")));
    const Digest md = Sha1::hash(as_bytes(std::string("manifest")));
    const Digest hd = Sha1::hash(as_bytes(std::string("hook")));
    chunk = cd.hex();
    manifest = md.hex();
    hook = hd.hex();
    framed.append(Ns::kDiskChunk, chunk, rec1);
    framed.append(Ns::kDiskChunk, chunk, rec2);
    framed.seal(Ns::kDiskChunk, chunk);
    framed.put(Ns::kManifest, manifest, bytes_of("opaque-engine-bin"));
    framed.put(Ns::kHook, hook, to_vec(md.span()));
    FileManifest fm("f.img");
    fm.add_range(cd, 0, rec1.size(), /*coalesce=*/false);
    file_manifest = Sha1::hash(as_bytes(std::string("f.img"))).hex();
    framed.put(Ns::kFileManifest, file_manifest, fm.serialize());
  }
};

void flip_middle_byte(StorageBackend& raw, Ns ns, const std::string& name) {
  auto bytes = raw.get(ns, name);
  ASSERT_TRUE(bytes.has_value());
  (*bytes)[bytes->size() / 2] ^= 0x01;
  raw.put(ns, name, *bytes);
}

TEST(Fsck, CleanRepositoryPassesFsck) {
  MemoryBackend raw;
  Repo repo(raw);
  const auto report = fsck_repository(raw, /*repair=*/false);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.objects, 4u);
  EXPECT_EQ(report.clean_objects, 4u);
  EXPECT_TRUE(report.issues.empty());
}

TEST(Fsck, SingleBitFlipInEveryNamespaceIsDetectedAndPinpointed) {
  const std::array<Ns, 4> all = {Ns::kDiskChunk, Ns::kHook, Ns::kManifest,
                                 Ns::kFileManifest};
  for (const Ns ns : all) {
    MemoryBackend raw;
    Repo repo(raw);
    const std::string name = ns == Ns::kDiskChunk     ? repo.chunk
                             : ns == Ns::kHook        ? repo.hook
                             : ns == Ns::kManifest    ? repo.manifest
                                                      : repo.file_manifest;
    flip_middle_byte(raw, ns, name);
    const auto report = fsck_repository(raw, /*repair=*/false);
    EXPECT_FALSE(report.clean()) << ns_name(ns);
    // A flip in a record length field is indistinguishable from a tear, so
    // chunks may classify as torn rather than corrupt — both are pinpointed.
    EXPECT_GE(report.corrupt + report.torn, 1u) << ns_name(ns);
    const bool pinpointed = std::any_of(
        report.issues.begin(), report.issues.end(), [&](const FsckIssue& i) {
          return i.ns == ns && i.name == name &&
                 (i.kind == FsckIssue::Kind::kCorrupt ||
                  i.kind == FsckIssue::Kind::kTornTail);
        });
    EXPECT_TRUE(pinpointed) << ns_name(ns) << "/" << name;
  }
}

TEST(Fsck, TornChunkTailIsTruncatedAndResealed) {
  MemoryBackend raw;
  Repo repo(raw);
  // Tear off the seal record plus part of record 2: record 1 must survive.
  auto bytes = *raw.get(Ns::kDiskChunk, repo.chunk);
  bytes.resize(bytes.size() - framing::kSealBytes - 5);
  raw.put(Ns::kDiskChunk, repo.chunk, bytes);

  const auto before = fsck_repository(raw, /*repair=*/false);
  EXPECT_FALSE(before.clean());
  EXPECT_EQ(before.torn, 1u);
  EXPECT_EQ(before.repaired, 0u);
  EXPECT_EQ(*raw.get(Ns::kDiskChunk, repo.chunk), bytes)
      << "check mode must not mutate the repository";

  const auto repair = fsck_repository(raw, /*repair=*/true);
  EXPECT_EQ(repair.torn, 1u);
  EXPECT_EQ(repair.repaired, 1u);
  EXPECT_EQ(repair.salvaged_bytes, repo.rec1.size());

  // The salvaged prefix reads back verified, and the repo is clean again
  // (the FileManifest only ever referenced record 1).
  FramedBackend framed(raw);
  EXPECT_EQ(framed.get_range(Ns::kDiskChunk, repo.chunk, 0, repo.rec1.size()),
            repo.rec1);
  EXPECT_TRUE(fsck_repository(raw, /*repair=*/false).clean());
}

TEST(Fsck, CorruptManifestIsQuarantinedAndItsHookDropped) {
  MemoryBackend raw;
  Repo repo(raw);
  flip_middle_byte(raw, Ns::kManifest, repo.manifest);

  const auto repair = fsck_repository(raw, /*repair=*/true);
  EXPECT_EQ(repair.corrupt, 1u);
  EXPECT_EQ(repair.dangling_hooks, 1u);
  EXPECT_EQ(repair.repaired, 2u);  // quarantined manifest + dropped hook
  EXPECT_FALSE(raw.exists(Ns::kManifest, repo.manifest));
  EXPECT_FALSE(raw.exists(Ns::kHook, repo.hook));
  EXPECT_TRUE(fsck_repository(raw, /*repair=*/false).clean());
}

TEST(Fsck, BrokenReferencesAreReportedNeverRepaired) {
  MemoryBackend raw;
  Repo repo(raw);
  FramedBackend framed(raw);
  FileManifest fm("ghost.img");
  fm.add_range(Sha1::hash(as_bytes(std::string("no-such-chunk"))), 0, 16,
               false);
  const std::string name = Sha1::hash(as_bytes(std::string("ghost.img"))).hex();
  framed.put(Ns::kFileManifest, name, fm.serialize());

  const auto repair = fsck_repository(raw, /*repair=*/true);
  EXPECT_EQ(repair.broken_refs, 1u);
  EXPECT_FALSE(repair.clean());
  EXPECT_TRUE(raw.exists(Ns::kFileManifest, name))
      << "user data is never auto-deleted";
}

TEST(Fsck, OrphanChunksAreInformationalOnly) {
  MemoryBackend raw;
  Repo repo(raw);
  FramedBackend framed(raw);
  framed.put(Ns::kDiskChunk, "deadbeef", bytes_of("unreferenced"));
  const auto report = fsck_repository(raw, /*repair=*/false);
  EXPECT_EQ(report.orphans, 1u);
  EXPECT_TRUE(report.clean()) << "orphans are gc's job, not damage";
}

TEST(Fsck, QuarantinePreservesOriginalBytesOnFileBackend) {
  TempDir tmp;
  FileBackend backend(tmp.path());
  Repo repo(backend);
  flip_middle_byte(backend, Ns::kManifest, repo.manifest);
  const ByteVec corrupted = *backend.get(Ns::kManifest, repo.manifest);

  fsck_repository(backend, /*repair=*/true);
  EXPECT_FALSE(backend.exists(Ns::kManifest, repo.manifest));
  const fs::path preserved =
      tmp.path() / "quarantine" / "manifests" / repo.manifest;
  ASSERT_TRUE(fs::exists(preserved));
  std::ifstream in(preserved, std::ios::binary);
  ByteVec on_disk((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(on_disk, corrupted);
}

}  // namespace
}  // namespace mhd
