#include <gtest/gtest.h>

#include <filesystem>

#include "mhd/store/file_backend.h"
#include "mhd/store/memory_backend.h"

namespace mhd {
namespace {

// Both backends must satisfy the same contract.
class BackendTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    if (GetParam() == "memory") {
      backend_ = std::make_unique<MemoryBackend>();
    } else {
      dir_ = std::filesystem::temp_directory_path() /
             ("mhd_backend_test_" + std::to_string(::getpid()));
      std::filesystem::remove_all(dir_);
      backend_ = std::make_unique<FileBackend>(dir_);
    }
  }

  void TearDown() override {
    backend_.reset();
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  std::unique_ptr<StorageBackend> backend_;
  std::filesystem::path dir_;
};

TEST_P(BackendTest, PutGetRoundTrip) {
  const ByteVec data = {1, 2, 3, 4, 5};
  backend_->put(Ns::kDiskChunk, "abc", data);
  const auto got = backend_->get(Ns::kDiskChunk, "abc");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, data);
}

TEST_P(BackendTest, GetMissingReturnsNullopt) {
  EXPECT_FALSE(backend_->get(Ns::kHook, "nope").has_value());
}

TEST_P(BackendTest, NamespacesAreIsolated) {
  backend_->put(Ns::kHook, "x", ByteVec{1});
  EXPECT_TRUE(backend_->exists(Ns::kHook, "x"));
  EXPECT_FALSE(backend_->exists(Ns::kManifest, "x"));
  EXPECT_EQ(backend_->object_count(Ns::kHook), 1u);
  EXPECT_EQ(backend_->object_count(Ns::kManifest), 0u);
}

TEST_P(BackendTest, AppendBuildsObject) {
  backend_->append(Ns::kDiskChunk, "c", ByteVec{1, 2});
  backend_->append(Ns::kDiskChunk, "c", ByteVec{3});
  const auto got = backend_->get(Ns::kDiskChunk, "c");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, (ByteVec{1, 2, 3}));
  EXPECT_EQ(backend_->object_count(Ns::kDiskChunk), 1u);
  EXPECT_EQ(backend_->content_bytes(Ns::kDiskChunk), 3u);
}

TEST_P(BackendTest, GetRange) {
  ByteVec data;
  for (int i = 0; i < 100; ++i) data.push_back(static_cast<Byte>(i));
  backend_->put(Ns::kDiskChunk, "r", data);
  const auto got = backend_->get_range(Ns::kDiskChunk, "r", 10, 5);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, (ByteVec{10, 11, 12, 13, 14}));
}

TEST_P(BackendTest, GetRangeBeyondEndFails) {
  backend_->put(Ns::kDiskChunk, "r", ByteVec{1, 2, 3});
  EXPECT_FALSE(backend_->get_range(Ns::kDiskChunk, "r", 2, 5).has_value());
  EXPECT_FALSE(backend_->get_range(Ns::kDiskChunk, "absent", 0, 1).has_value());
}

TEST_P(BackendTest, PutReplacesAndAccountsBytes) {
  backend_->put(Ns::kManifest, "m", ByteVec(100, 7));
  backend_->put(Ns::kManifest, "m", ByteVec(40, 8));
  EXPECT_EQ(backend_->object_count(Ns::kManifest), 1u);
  EXPECT_EQ(backend_->content_bytes(Ns::kManifest), 40u);
}

TEST_P(BackendTest, RemoveUpdatesAccounting) {
  backend_->put(Ns::kHook, "h", ByteVec(20, 1));
  EXPECT_TRUE(backend_->remove(Ns::kHook, "h"));
  EXPECT_FALSE(backend_->remove(Ns::kHook, "h"));
  EXPECT_EQ(backend_->object_count(Ns::kHook), 0u);
  EXPECT_EQ(backend_->content_bytes(Ns::kHook), 0u);
}

TEST_P(BackendTest, ListReturnsSortedNames) {
  backend_->put(Ns::kHook, "bb", ByteVec{1});
  backend_->put(Ns::kHook, "aa", ByteVec{1});
  backend_->put(Ns::kHook, "cc", ByteVec{1});
  EXPECT_EQ(backend_->list(Ns::kHook),
            (std::vector<std::string>{"aa", "bb", "cc"}));
}

TEST_P(BackendTest, TotalsAndInodeAccounting) {
  backend_->put(Ns::kHook, "h", ByteVec(20, 1));
  backend_->put(Ns::kManifest, "m", ByteVec(36, 2));
  EXPECT_EQ(backend_->total_objects(), 2u);
  EXPECT_EQ(backend_->total_content_bytes(), 56u);
  EXPECT_EQ(backend_->stored_bytes_with_inodes(),
            56u + 2 * StorageBackend::kInodeBytes);
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendTest,
                         ::testing::Values("memory", "file"));

TEST(FileBackend, AdoptsExistingContent) {
  const auto dir = std::filesystem::temp_directory_path() / "mhd_adopt_test";
  std::filesystem::remove_all(dir);
  {
    FileBackend b(dir);
    b.put(Ns::kDiskChunk, "keep", ByteVec(10, 3));
  }
  FileBackend reopened(dir);
  EXPECT_EQ(reopened.object_count(Ns::kDiskChunk), 1u);
  EXPECT_EQ(reopened.content_bytes(Ns::kDiskChunk), 10u);
  const auto got = reopened.get(Ns::kDiskChunk, "keep");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->size(), 10u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace mhd
