#include "mhd/store/restore_reader.h"

#include <gtest/gtest.h>

#include "../dedup/engine_test_util.h"
#include "mhd/core/mhd_engine.h"
#include "mhd/store/fault_backend.h"
#include "mhd/store/memory_backend.h"
#include "mhd/store/store_errors.h"

namespace mhd {
namespace {

using testutil::NamedFile;
using testutil::random_bytes;

EngineConfig small_config() {
  EngineConfig cfg;
  cfg.ecs = 512;
  cfg.sd = 8;
  cfg.bloom_bytes = 64 * 1024;
  return cfg;
}

class RestoreReaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = random_bytes(150000, 1);
    b_ = a_;
    const ByteVec patch = random_bytes(5000, 2);
    std::copy(patch.begin(), patch.end(), b_.begin() + 70000);
    ObjectStore store(backend_);
    MhdEngine engine(store, small_config());
    testutil::run_files(engine, {{"a", a_}, {"b", b_}});
  }

  MemoryBackend backend_;
  ByteVec a_, b_;
};

TEST_F(RestoreReaderTest, StreamsByteExactly) {
  auto reader = RestoreReader::open(backend_, "b");
  ASSERT_TRUE(reader.has_value());
  EXPECT_EQ(reader->total_length(), b_.size());
  const ByteVec restored = read_all(*reader);
  EXPECT_TRUE(equal(restored, b_));
  EXPECT_TRUE(reader->ok());
  EXPECT_EQ(reader->produced(), b_.size());
}

TEST_F(RestoreReaderTest, SmallOddBuffersAgree) {
  auto reader = RestoreReader::open(backend_, "a");
  ASSERT_TRUE(reader.has_value());
  ByteVec restored;
  Byte buf[137];
  std::size_t n;
  while ((n = reader->read({buf, sizeof(buf)})) > 0) {
    restored.insert(restored.end(), buf, buf + n);
  }
  EXPECT_TRUE(equal(restored, a_));
}

TEST_F(RestoreReaderTest, UnknownFileReturnsNullopt) {
  EXPECT_FALSE(RestoreReader::open(backend_, "missing").has_value());
}

TEST_F(RestoreReaderTest, DamagedRepositoryStopsShortNotWrong) {
  // Remove all chunks: the stream must stop and flag !ok(), not fabricate.
  for (const auto& name : backend_.list(Ns::kDiskChunk)) {
    backend_.remove(Ns::kDiskChunk, name);
  }
  auto reader = RestoreReader::open(backend_, "a");
  ASSERT_TRUE(reader.has_value());
  const ByteVec out = read_all(*reader);
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(reader->ok());
}

TEST_F(RestoreReaderTest, TransientReadErrorIsRetriedInPlace) {
  // Read #1 is open()'s FileManifest get; #2 is the first chunk
  // get_range. Both fail once — the bounded retry must absorb each and
  // the restore must still be byte-exact.
  FaultInjectingBackend flaky(backend_, FaultPlan::parse("readerr@1,readerr@3"));
  auto reader = RestoreReader::open(flaky, "a");
  ASSERT_TRUE(reader.has_value());
  const ByteVec restored = read_all(*reader);
  EXPECT_TRUE(equal(restored, a_));
  EXPECT_TRUE(reader->ok());
  EXPECT_EQ(reader->transient_retries(), 1u);  // open's retry not counted
}

TEST_F(RestoreReaderTest, PersistentTransientErrorsExhaustRetryBudget) {
  // A persistently failing device must surface after the bounded retries
  // (never spin forever, never fabricate bytes).
  FaultInjectingBackend dead(backend_, FaultPlan::parse("readerr@2x64"));
  auto reader = RestoreReader::open(dead, "a");
  ASSERT_TRUE(reader.has_value());
  Byte buf[4096];
  EXPECT_THROW(reader->read({buf, sizeof(buf)}), TransientReadError);
}

TEST_F(RestoreReaderTest, ProgressAdvancesMonotonically) {
  auto reader = RestoreReader::open(backend_, "a");
  ASSERT_TRUE(reader.has_value());
  Byte buf[4096];
  std::uint64_t last = 0;
  while (reader->read({buf, sizeof(buf)}) > 0) {
    EXPECT_GE(reader->produced(), last);
    last = reader->produced();
  }
  EXPECT_EQ(last, reader->total_length());
}

}  // namespace
}  // namespace mhd
