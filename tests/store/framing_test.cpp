// Framing formats and the FramedBackend decorator: sealed objects, record
// streams, torn/corrupt classification, logical accounting, and the
// absent-vs-corrupt error split the whole recovery path depends on.
#include "mhd/store/framing.h"

#include <gtest/gtest.h>

#include "mhd/store/framed_backend.h"
#include "mhd/store/memory_backend.h"
#include "mhd/store/store_errors.h"
#include "mhd/util/random.h"

namespace mhd {
namespace {

ByteVec bytes_of(const std::string& s) { return to_vec(as_bytes(s)); }

TEST(Framing, SealedObjectRoundTrip) {
  const ByteVec payload = bytes_of("hello manifest");
  const ByteVec framed = framing::seal_object(payload);
  EXPECT_EQ(framed.size(), payload.size() + framing::kTrailerBytes);
  const auto back = framing::unseal_object(framed);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, payload);

  // Empty payload is a valid sealed object.
  const ByteVec empty = framing::seal_object({});
  EXPECT_EQ(empty.size(), framing::kTrailerBytes);
  ASSERT_TRUE(framing::unseal_object(empty).has_value());
  EXPECT_TRUE(framing::unseal_object(empty)->empty());
}

TEST(Framing, SealedObjectDetectsEveryByteFlip) {
  const ByteVec framed = framing::seal_object(bytes_of("sensitive"));
  for (std::size_t i = 0; i < framed.size(); ++i) {
    ByteVec bad = framed;
    bad[i] ^= 0x01;
    EXPECT_FALSE(framing::unseal_object(bad).has_value()) << "byte " << i;
  }
}

TEST(Framing, SealedObjectDetectsTruncationAndGarbage) {
  const ByteVec framed = framing::seal_object(bytes_of("0123456789"));
  for (std::size_t keep = 0; keep < framed.size(); ++keep) {
    const ByteVec torn(framed.begin(),
                       framed.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_FALSE(framing::unseal_object(torn).has_value()) << "keep " << keep;
  }
  EXPECT_FALSE(framing::unseal_object(bytes_of("raw unframed")).has_value());
}

TEST(Framing, RecordStreamRoundTrip) {
  ByteVec stream;
  ByteVec logical;
  for (const std::string part : {"first", "", "second-longer-part", "x"}) {
    mhd::append(stream, framing::frame_record(as_bytes(part)));
    mhd::append(logical, as_bytes(part));
  }
  mhd::append(stream, framing::seal_record(logical.size()));

  const auto scan = framing::scan_records(stream);
  EXPECT_TRUE(scan.sealed);
  EXPECT_FALSE(scan.corrupt);
  EXPECT_FALSE(scan.torn);
  EXPECT_EQ(scan.records, 4u);
  EXPECT_EQ(scan.logical_bytes, logical.size());
  EXPECT_EQ(scan.valid_prefix, stream.size());

  const auto payload = framing::extract_stream(stream);
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, logical);
}

TEST(Framing, UnsealedStreamIsTorn) {
  // A stream cut exactly at a record boundary, seal never written: the
  // whole point of the seal record is that this is still detectable.
  ByteVec stream = framing::frame_record(as_bytes("complete record"));
  const auto scan = framing::scan_records(stream);
  EXPECT_TRUE(scan.torn);
  EXPECT_FALSE(scan.sealed);
  EXPECT_FALSE(scan.corrupt);
  EXPECT_EQ(scan.logical_bytes, 15u);
  EXPECT_EQ(scan.valid_prefix, stream.size());
  EXPECT_FALSE(framing::extract_stream(stream).has_value());
}

TEST(Framing, TornTailKeepsValidPrefix) {
  ByteVec stream = framing::frame_record(as_bytes("keep me"));
  const std::size_t prefix = stream.size();
  mhd::append(stream, framing::frame_record(as_bytes("torn away")));
  mhd::append(stream, framing::seal_record(7 + 9));
  // Tear at every length inside the second record + seal.
  for (std::size_t keep = prefix + 1; keep < stream.size(); ++keep) {
    const ByteVec torn(stream.begin(),
                       stream.begin() + static_cast<std::ptrdiff_t>(keep));
    const auto scan = framing::scan_records(torn);
    EXPECT_FALSE(scan.sealed) << "keep " << keep;
    EXPECT_TRUE(scan.torn || scan.corrupt) << "keep " << keep;
    // The salvageable prefix never shrinks below the first record and
    // never claims bytes from the torn tail.
    EXPECT_GE(scan.valid_prefix, prefix) << "keep " << keep;
    EXPECT_GE(scan.logical_bytes, 7u) << "keep " << keep;
  }
}

TEST(Framing, CorruptRecordPayloadDetected) {
  ByteVec stream = framing::frame_record(as_bytes("aaaa"));
  mhd::append(stream, framing::frame_record(as_bytes("bbbb")));
  mhd::append(stream, framing::seal_record(8));
  // Flip one payload byte in the second record.
  stream[framing::kHeaderBytes + 4 + framing::kHeaderBytes + 2] ^= 0x80;
  const auto scan = framing::scan_records(stream);
  EXPECT_TRUE(scan.corrupt);
  EXPECT_FALSE(scan.sealed);
  EXPECT_EQ(scan.logical_bytes, 4u);  // first record still salvageable
  EXPECT_EQ(scan.valid_prefix, framing::kHeaderBytes + 4);
}

TEST(Framing, SealLengthMismatchIsCorrupt) {
  ByteVec stream = framing::frame_record(as_bytes("data"));
  mhd::append(stream, framing::seal_record(99));  // lies about the length
  const auto scan = framing::scan_records(stream);
  EXPECT_TRUE(scan.corrupt);
  EXPECT_FALSE(scan.sealed);
}

TEST(Framing, BytesAfterSealAreCorrupt) {
  ByteVec stream = framing::frame_record(as_bytes("data"));
  mhd::append(stream, framing::seal_record(4));
  mhd::append(stream, framing::frame_record(as_bytes("late append")));
  EXPECT_TRUE(framing::scan_records(stream).corrupt);
}

// --- FramedBackend -------------------------------------------------------

TEST(FramedBackend, LogicalViewMatchesBareBackend) {
  MemoryBackend raw;
  FramedBackend framed(raw);

  const ByteVec a = bytes_of("chunk-part-one");
  const ByteVec b = bytes_of("chunk-part-two!");
  framed.append(Ns::kDiskChunk, "c0", a);
  framed.append(Ns::kDiskChunk, "c0", b);
  framed.seal(Ns::kDiskChunk, "c0");
  framed.put(Ns::kHook, "h0", bytes_of("hookdata"));

  // Logical view: exactly the payload bytes.
  EXPECT_EQ(framed.content_bytes(Ns::kDiskChunk), a.size() + b.size());
  EXPECT_EQ(framed.content_bytes(Ns::kHook), 8u);
  ByteVec whole = a;
  mhd::append(whole, b);
  EXPECT_EQ(framed.get(Ns::kDiskChunk, "c0"), whole);
  const auto range = framed.get_range(Ns::kDiskChunk, "c0", a.size(), 4);
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(*range, bytes_of("chun"));

  // Physical view: framing overhead on top.
  EXPECT_EQ(framed.physical_bytes(Ns::kDiskChunk),
            a.size() + b.size() + 2 * framing::kHeaderBytes +
                framing::kSealBytes);
  EXPECT_GT(framed.physical_bytes(Ns::kHook),
            framed.content_bytes(Ns::kHook));
}

TEST(FramedBackend, AbsentIsNulloptCorruptThrows) {
  MemoryBackend raw;
  FramedBackend framed(raw);
  EXPECT_EQ(framed.get(Ns::kManifest, "missing"), std::nullopt);
  EXPECT_EQ(framed.get_range(Ns::kDiskChunk, "missing", 0, 1), std::nullopt);

  framed.put(Ns::kManifest, "m0", bytes_of("manifest body"));
  // Flip one stored byte underneath the framing: the exact bit-rot the
  // acceptance criteria require to be caught on read, never returned.
  for (std::size_t i = 0; i < raw.get(Ns::kManifest, "m0")->size(); ++i) {
    ByteVec bad = *raw.get(Ns::kManifest, "m0");
    bad[i] ^= 0x40;
    MemoryBackend raw2;
    raw2.put(Ns::kManifest, "m0", bad);
    FramedBackend framed2(raw2);
    EXPECT_THROW(framed2.get(Ns::kManifest, "m0"), CorruptObjectError);
  }
}

TEST(FramedBackend, CorruptErrorCarriesNamespaceAndName) {
  MemoryBackend raw;
  FramedBackend framed(raw);
  framed.put(Ns::kHook, "deadbeef", bytes_of("payload"));
  (*raw.get(Ns::kHook, "deadbeef"));
  ByteVec bad = *raw.get(Ns::kHook, "deadbeef");
  bad[0] ^= 0xFF;
  raw.put(Ns::kHook, "deadbeef", bad);
  try {
    framed.get(Ns::kHook, "deadbeef");
    FAIL() << "expected CorruptObjectError";
  } catch (const CorruptObjectError& e) {
    EXPECT_EQ(e.ns(), Ns::kHook);
    EXPECT_EQ(e.object_name(), "deadbeef");
    EXPECT_NE(std::string(e.what()).find("hooks/deadbeef"), std::string::npos);
  }
}

TEST(FramedBackend, TornChunkThrowsOnRead) {
  MemoryBackend raw;
  FramedBackend framed(raw);
  framed.append(Ns::kDiskChunk, "c0", bytes_of("0123456789abcdef"));
  framed.seal(Ns::kDiskChunk, "c0");
  // Simulate a torn write: drop the last 5 physical bytes.
  ByteVec phys = *raw.get(Ns::kDiskChunk, "c0");
  phys.resize(phys.size() - 5);
  raw.put(Ns::kDiskChunk, "c0", phys);
  EXPECT_THROW(framed.get(Ns::kDiskChunk, "c0"), CorruptObjectError);
  EXPECT_THROW(framed.get_range(Ns::kDiskChunk, "c0", 0, 4),
               CorruptObjectError);
}

TEST(FramedBackend, RangeBeyondLogicalSizeIsNullopt) {
  MemoryBackend raw;
  FramedBackend framed(raw);
  framed.put(Ns::kDiskChunk, "c0", bytes_of("0123456789"));
  EXPECT_TRUE(framed.get_range(Ns::kDiskChunk, "c0", 0, 10).has_value());
  EXPECT_TRUE(framed.get_range(Ns::kDiskChunk, "c0", 10, 0).has_value());
  EXPECT_EQ(framed.get_range(Ns::kDiskChunk, "c0", 0, 11), std::nullopt);
  EXPECT_EQ(framed.get_range(Ns::kDiskChunk, "c0", 11, 0), std::nullopt);
  // Overflow-crafted range must not wrap into success.
  EXPECT_EQ(framed.get_range(Ns::kDiskChunk, "c0", 1,
                             std::numeric_limits<std::uint64_t>::max()),
            std::nullopt);
}

TEST(FramedBackend, ReopenAdoptsLogicalAccounting) {
  MemoryBackend raw;
  {
    FramedBackend framed(raw);
    framed.append(Ns::kDiskChunk, "c0", bytes_of("0123456789"));
    framed.seal(Ns::kDiskChunk, "c0");
    framed.put(Ns::kManifest, "m0", bytes_of("manifest"));
    framed.put(Ns::kHook, "h0", bytes_of("hook"));
    framed.put(Ns::kHook, "h1", bytes_of("hook2"));
    framed.remove(Ns::kHook, "h0");
  }
  FramedBackend reopened(raw);
  EXPECT_EQ(reopened.content_bytes(Ns::kDiskChunk), 10u);
  EXPECT_EQ(reopened.content_bytes(Ns::kManifest), 8u);
  EXPECT_EQ(reopened.content_bytes(Ns::kHook), 5u);
  EXPECT_EQ(reopened.object_count(Ns::kHook), 1u);
  EXPECT_EQ(reopened.get(Ns::kDiskChunk, "c0"), bytes_of("0123456789"));
  // Appending more after reopen continues the stream correctly.
  reopened.append(Ns::kDiskChunk, "c1", bytes_of("more"));
  reopened.seal(Ns::kDiskChunk, "c1");
  EXPECT_EQ(reopened.get(Ns::kDiskChunk, "c1"), bytes_of("more"));
}

TEST(FramedBackend, PutReplaceAndRemoveKeepAccountingExact) {
  MemoryBackend raw;
  FramedBackend framed(raw);
  framed.put(Ns::kManifest, "m", bytes_of("short"));
  framed.put(Ns::kManifest, "m", bytes_of("a much longer manifest body"));
  EXPECT_EQ(framed.content_bytes(Ns::kManifest), 27u);
  framed.put(Ns::kManifest, "m", bytes_of("tiny"));
  EXPECT_EQ(framed.content_bytes(Ns::kManifest), 4u);
  EXPECT_TRUE(framed.remove(Ns::kManifest, "m"));
  EXPECT_EQ(framed.content_bytes(Ns::kManifest), 0u);
  EXPECT_EQ(framed.physical_bytes(Ns::kManifest), 0u);
  EXPECT_FALSE(framed.remove(Ns::kManifest, "m"));
}

}  // namespace
}  // namespace mhd
