// ContainerBackend — packing geometry, reopen, torn/corrupt container
// handling through fsck, cache accounting, and GC sweeping. The container
// layer must keep the logical chunk namespace byte-exact while physically
// packing write-order bytes into fixed containers.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mhd/store/container_store.h"
#include "mhd/store/framed_backend.h"
#include "mhd/store/memory_backend.h"
#include "mhd/store/scrub.h"
#include "mhd/store/store_errors.h"

namespace mhd {
namespace {

ByteVec pattern_bytes(std::size_t n, Byte seed) {
  ByteVec v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<Byte>((seed + i * 131) & 0xff);
  }
  return v;
}

/// Writes one logical chunk (append + seal = commit) and returns its data.
ByteVec write_chunk(StorageBackend& b, const std::string& name, std::size_t n,
                    Byte seed) {
  const ByteVec data = pattern_bytes(n, seed);
  b.append(Ns::kDiskChunk, name, data);
  b.seal(Ns::kDiskChunk, name);
  return data;
}

ContainerConfig small_containers(std::uint64_t container_bytes = 1024,
                                 std::uint64_t cache_bytes = 1 << 20) {
  ContainerConfig cc;
  cc.container_bytes = container_bytes;
  cc.cache_bytes = cache_bytes;
  return cc;
}

TEST(ContainerStore, PacksChunksInWriteOrderAndRestoresByteExactly) {
  MemoryBackend raw;
  ContainerBackend cb(raw, small_containers(1024));

  const ByteVec a = write_chunk(cb, "aa01", 600, 1);
  const ByteVec b = write_chunk(cb, "bb02", 600, 2);
  const ByteVec c = write_chunk(cb, "cc03", 600, 3);

  // 1800 bytes into 1024-byte containers: container 0 sealed (overflowed by
  // chunk b's split), container 1 still open.
  EXPECT_EQ(cb.stats().containers_sealed, 1u);
  EXPECT_EQ(cb.stats().packed_bytes, 1800u);
  EXPECT_EQ(cb.content_bytes(Ns::kDiskChunk), 1800u);
  EXPECT_EQ(cb.object_count(Ns::kDiskChunk), 3u);

  // Write order decides placement: a wholly in container 0, b split across
  // the boundary, c in container 1 (the open one).
  EXPECT_EQ(cb.locate("aa01", 0), 0u);
  EXPECT_EQ(cb.locate("bb02", 0), 0u);
  EXPECT_EQ(cb.locate("bb02", 599), 1u);
  EXPECT_EQ(cb.locate("cc03", 0), 1u);
  EXPECT_FALSE(cb.locate("aa01", 600).has_value());  // past chunk end
  EXPECT_FALSE(cb.locate("zz99", 0).has_value());    // unknown chunk

  EXPECT_EQ(cb.get(Ns::kDiskChunk, "aa01"), a);
  EXPECT_EQ(cb.get(Ns::kDiskChunk, "bb02"), b);
  EXPECT_EQ(cb.get(Ns::kDiskChunk, "cc03"), c);
  // A range straddling the container boundary inside chunk b.
  const auto mid = cb.get_range(Ns::kDiskChunk, "bb02", 400, 100);
  ASSERT_TRUE(mid.has_value());
  EXPECT_TRUE(equal(*mid, ByteSpan(b.data() + 400, 100)));

  // Physically the inner backend holds container streams + chunk maps and
  // not a single per-chunk object.
  EXPECT_EQ(raw.object_count(Ns::kDiskChunk), 0u);
  EXPECT_EQ(raw.object_count(Ns::kChunkMap), 3u);
  EXPECT_EQ(raw.list(Ns::kContainer).front(), "c00000000");
  EXPECT_EQ(cb.container_data_bytes(0), 1024u);
}

TEST(ContainerStore, OversizedAppendSplitsAcrossContainers) {
  MemoryBackend raw;
  ContainerBackend cb(raw, small_containers(1024));
  const ByteVec big = write_chunk(cb, "big1", 3000, 9);
  cb.flush();

  EXPECT_EQ(cb.stats().containers_sealed, 3u);  // ceil(3000/1024) = 3
  EXPECT_EQ(cb.locate("big1", 0), 0u);
  EXPECT_EQ(cb.locate("big1", 1024), 1u);
  EXPECT_EQ(cb.locate("big1", 2999), 2u);
  EXPECT_EQ(cb.get(Ns::kDiskChunk, "big1"), big);
}

TEST(ContainerStore, ReopenRestoresGeometryFromCommittedMaps) {
  MemoryBackend raw;
  ByteVec a, b;
  {
    ContainerBackend cb(raw, small_containers(1024));
    a = write_chunk(cb, "aa01", 700, 4);
    b = write_chunk(cb, "bb02", 900, 5);
  }  // destructor flushes: every packed byte is a clean stream below

  ContainerBackend reopened(raw, small_containers(1024));
  EXPECT_EQ(reopened.get(Ns::kDiskChunk, "aa01"), a);
  EXPECT_EQ(reopened.get(Ns::kDiskChunk, "bb02"), b);
  EXPECT_EQ(reopened.content_bytes(Ns::kDiskChunk), 1600u);
  EXPECT_TRUE(reopened.exists(Ns::kDiskChunk, "aa01"));
  // Sealed streams are immutable: new writes go to a fresh container id
  // strictly after everything already on disk.
  EXPECT_GE(reopened.open_container(), 2u);
  const ByteVec c = write_chunk(reopened, "cc03", 100, 6);
  EXPECT_EQ(reopened.locate("cc03", 0), reopened.open_container());
  EXPECT_EQ(reopened.get(Ns::kDiskChunk, "cc03"), c);
}

TEST(ContainerStore, TornContainerTailIsTruncatedToCommittedPrefixByFsck) {
  MemoryBackend raw;
  ByteVec a;
  {
    FramedBackend framed(raw);
    ContainerBackend cb(framed, small_containers(1 << 16));
    a = write_chunk(cb, "aa01", 700, 7);   // committed
    const ByteVec junk = pattern_bytes(300, 8);
    cb.append(Ns::kDiskChunk, "bb02", junk);  // in-flight, never sealed
    // No flush: tear the raw stream's tail (mid bb02's record), the state
    // a crash leaves behind.
  }
  {
    auto bytes = raw.get(Ns::kContainer, "c00000000");
    ASSERT_TRUE(bytes.has_value());
    bytes->resize(bytes->size() - 5);
    raw.put(Ns::kContainer, "c00000000", *bytes);
  }

  fsck_repository(raw, /*repair=*/true);
  const auto after = fsck_repository(raw, /*repair=*/false);
  EXPECT_TRUE(after.clean()) << after.to_string();

  // The committed chunk survives in full; the torn in-flight append is
  // gone — exactly the crash-consistency invariant.
  FramedBackend framed(raw);
  ContainerBackend reopened(framed, small_containers(1 << 16));
  EXPECT_EQ(reopened.get(Ns::kDiskChunk, "aa01"), a);
  EXPECT_FALSE(reopened.exists(Ns::kDiskChunk, "bb02"));
}

TEST(ContainerStore, BitFlippedContainerIsRejectedNotMisread) {
  MemoryBackend raw;
  {
    FramedBackend framed(raw);
    ContainerBackend cb(framed, small_containers(1 << 16));
    write_chunk(cb, "aa01", 700, 11);
  }
  {
    auto bytes = raw.get(Ns::kContainer, "c00000000");
    ASSERT_TRUE(bytes.has_value());
    (*bytes)[bytes->size() / 2] ^= 0x01;  // single-bit rot inside the data
    raw.put(Ns::kContainer, "c00000000", *bytes);
  }

  FramedBackend framed(raw);
  ContainerBackend reopened(framed, small_containers(1 << 16));
  EXPECT_THROW(reopened.get(Ns::kDiskChunk, "aa01"), CorruptObjectError);

  const auto report = fsck_repository(raw, /*repair=*/false);
  EXPECT_FALSE(report.clean());
  EXPECT_GE(report.corrupt, 1u);
}

TEST(ContainerStore, CacheHitsMissesAndEvictionsAreAccounted) {
  MemoryBackend raw;
  // Cache holds exactly two full containers.
  ContainerBackend cb(raw, small_containers(1024, 2048));
  std::vector<std::string> names;
  for (int i = 0; i < 4; ++i) {
    names.push_back("ch" + std::to_string(i));
    write_chunk(cb, names.back(), 1024, static_cast<Byte>(i));
  }
  cb.flush();
  cb.drop_cache();  // sealing populated the cache; measure from cold
  const ContainerStats base = cb.stats();

  cb.get(Ns::kDiskChunk, names[0]);  // miss: load container 0
  cb.get(Ns::kDiskChunk, names[0]);  // hit
  EXPECT_EQ(cb.stats().container_reads - base.container_reads, 1u);
  EXPECT_EQ(cb.stats().cache_hits - base.cache_hits, 1u);

  cb.get(Ns::kDiskChunk, names[1]);  // miss: cache = {1, 0}
  cb.get(Ns::kDiskChunk, names[2]);  // miss: evicts 0, cache = {2, 1}
  EXPECT_EQ(cb.stats().cache_evictions - base.cache_evictions, 1u);

  cb.get(Ns::kDiskChunk, names[1]);  // still resident
  EXPECT_EQ(cb.stats().cache_hits - base.cache_hits, 2u);
  cb.get(Ns::kDiskChunk, names[0]);  // evicted above: a miss again
  EXPECT_EQ(cb.stats().container_reads - base.container_reads, 4u);
  EXPECT_EQ(cb.stats().container_read_bytes - base.container_read_bytes,
            4u * 1024u);
}

TEST(ContainerStore, SweepRemovesOnlyFullyUnreferencedContainers) {
  MemoryBackend raw;
  ContainerBackend cb(raw, small_containers(1024));
  write_chunk(cb, "aa01", 1024, 1);  // fills container 0 exactly
  write_chunk(cb, "bb02", 1024, 2);  // fills container 1
  cb.flush();
  ASSERT_EQ(raw.object_count(Ns::kContainer), 2u);

  // Both containers referenced: nothing to sweep.
  EXPECT_EQ(cb.sweep_containers().first, 0u);

  ASSERT_TRUE(cb.remove(Ns::kDiskChunk, "aa01"));
  const auto [removed, reclaimed] = cb.sweep_containers();
  EXPECT_EQ(removed, 1u);
  EXPECT_EQ(reclaimed, 1024u);
  EXPECT_EQ(raw.object_count(Ns::kContainer), 1u);
  EXPECT_EQ(cb.get(Ns::kDiskChunk, "bb02"), pattern_bytes(1024, 2));
}

}  // namespace
}  // namespace mhd
