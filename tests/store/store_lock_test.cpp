// StoreLock satellites: single-writer exclusion with a typed error naming
// the holder, stale-lock adoption after a crash (dead or malformed PID),
// and release/destructor unlinking.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <string>

#include "mhd/store/store_lock.h"

namespace mhd {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() /
           ("mhd_lock_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    fs::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  const fs::path& path() const { return dir_; }
  fs::path lock_path() const { return dir_ / StoreLock::kFileName; }

 private:
  static inline int counter_ = 0;
  fs::path dir_;
};

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

TEST(StoreLock, AcquireRecordsOwnPid) {
  TempDir tmp;
  StoreLock lock = StoreLock::acquire(tmp.path());
  ASSERT_TRUE(fs::exists(tmp.lock_path()));
  EXPECT_EQ(std::stol(slurp(tmp.lock_path())), static_cast<long>(::getpid()));
  EXPECT_EQ(lock.path(), tmp.lock_path().string());
}

TEST(StoreLock, SecondAcquireThrowsTypedErrorNamingHolder) {
  TempDir tmp;
  StoreLock lock = StoreLock::acquire(tmp.path());
  try {
    StoreLock second = StoreLock::acquire(tmp.path());
    FAIL() << "second acquire must throw";
  } catch (const StoreLockedError& e) {
    EXPECT_EQ(e.holder_pid(), static_cast<long>(::getpid()));
    EXPECT_EQ(e.lock_path(), tmp.lock_path().string());
    EXPECT_NE(std::string(e.what()).find(std::to_string(::getpid())),
              std::string::npos);
  }
  // The failed attempt must not have stolen or removed the live lock.
  EXPECT_TRUE(fs::exists(tmp.lock_path()));
}

TEST(StoreLock, StaleLockFromDeadProcessIsAdopted) {
  TempDir tmp;
  // A reaped child is a guaranteed-dead PID.
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) ::_exit(0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_FALSE(process_alive(child));

  { std::ofstream(tmp.lock_path()) << child << "\n"; }
  StoreLock lock = StoreLock::acquire(tmp.path());  // no throw
  EXPECT_EQ(std::stol(slurp(tmp.lock_path())), static_cast<long>(::getpid()));
}

TEST(StoreLock, MalformedLockFileCountsAsStale) {
  TempDir tmp;
  { std::ofstream(tmp.lock_path()) << "not a pid"; }
  StoreLock lock = StoreLock::acquire(tmp.path());
  EXPECT_EQ(std::stol(slurp(tmp.lock_path())), static_cast<long>(::getpid()));
}

TEST(StoreLock, ReleaseAndDestructorUnlink) {
  TempDir tmp;
  {
    StoreLock lock = StoreLock::acquire(tmp.path());
    ASSERT_TRUE(fs::exists(tmp.lock_path()));
    lock.release();
    EXPECT_FALSE(fs::exists(tmp.lock_path()));
    lock.release();  // idempotent
  }
  {
    StoreLock lock = StoreLock::acquire(tmp.path());
    ASSERT_TRUE(fs::exists(tmp.lock_path()));
  }
  EXPECT_FALSE(fs::exists(tmp.lock_path()));  // destructor unlinked

  // Sequential acquire/release cycles keep working.
  StoreLock again = StoreLock::acquire(tmp.path());
  EXPECT_TRUE(fs::exists(tmp.lock_path()));
}

TEST(StoreLock, MoveTransfersOwnershipWithoutDoubleUnlink) {
  TempDir tmp;
  std::optional<StoreLock> moved;
  {
    StoreLock lock = StoreLock::acquire(tmp.path());
    moved.emplace(std::move(lock));
    // `lock` is inert now; its destructor must not unlink.
  }
  EXPECT_TRUE(fs::exists(tmp.lock_path()));
  moved.reset();
  EXPECT_FALSE(fs::exists(tmp.lock_path()));
}

TEST(StoreLock, AcquireCreatesMissingRepositoryDirectory) {
  TempDir tmp;
  const fs::path root = tmp.path() / "fresh" / "repo";
  StoreLock lock = StoreLock::acquire(root);
  EXPECT_TRUE(fs::exists(root / StoreLock::kFileName));
}

TEST(ProcessAlive, SelfIsAliveAbsurdPidIsNot) {
  EXPECT_TRUE(process_alive(::getpid()));
  EXPECT_FALSE(process_alive(999999999L));
}

}  // namespace
}  // namespace mhd
