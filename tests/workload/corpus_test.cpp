#include "mhd/workload/corpus.h"

#include <gtest/gtest.h>

#include <map>

#include "mhd/workload/presets.h"

namespace mhd {
namespace {

TEST(ImageSource, StreamsPlanBytes) {
  BlockSource blocks(1);
  ImagePlan plan;
  plan.add({10, 0, 1000});
  plan.add({11, 500, 300});
  ImageSource src(plan, blocks);
  const ByteVec all = read_all(src);
  ASSERT_EQ(all.size(), 1300u);

  ByteVec expect_a(1000), expect_b(300);
  blocks.fill(10, 0, expect_a);
  blocks.fill(11, 500, expect_b);
  EXPECT_TRUE(equal({all.data(), 1000}, expect_a));
  EXPECT_TRUE(equal({all.data() + 1000, 300}, expect_b));
}

TEST(Corpus, FileCountAndOrder) {
  const Corpus corpus(test_preset());
  const auto& cfg = corpus.config();
  ASSERT_EQ(corpus.files().size(),
            static_cast<std::size_t>(cfg.machines) * cfg.snapshots);
  // Snapshot-major order.
  EXPECT_EQ(corpus.files()[0].name, "day01/pc01.img");
  EXPECT_EQ(corpus.files()[1].name, "day01/pc02.img");
  EXPECT_EQ(corpus.files()[cfg.machines].name, "day02/pc01.img");
}

TEST(Corpus, Deterministic) {
  const Corpus a(test_preset(7)), b(test_preset(7));
  ASSERT_EQ(a.files().size(), b.files().size());
  for (std::size_t i = 0; i < a.files().size(); ++i) {
    EXPECT_EQ(a.plan(i).extents(), b.plan(i).extents());
  }
  auto sa = a.open(0);
  auto sb = b.open(0);
  EXPECT_EQ(read_all(*sa), read_all(*sb));
}

TEST(Corpus, SeedChangesContent) {
  const Corpus a(test_preset(1)), b(test_preset(2));
  auto sa = a.open(0);
  auto sb = b.open(0);
  EXPECT_NE(read_all(*sa), read_all(*sb));
}

TEST(Corpus, TotalBytesMatchesFiles) {
  const Corpus corpus(test_preset());
  std::uint64_t sum = 0;
  for (const auto& f : corpus.files()) sum += f.bytes;
  EXPECT_EQ(sum, corpus.total_bytes());
  // Images stay near the configured size (insertions/deletions drift a bit).
  for (const auto& f : corpus.files()) {
    EXPECT_GT(f.bytes, corpus.config().image_bytes * 8 / 10);
    EXPECT_LT(f.bytes, corpus.config().image_bytes * 12 / 10);
  }
}

TEST(Corpus, SameOsMachinesShareBase) {
  CorpusConfig cfg = test_preset();
  cfg.machines = 4;
  cfg.os_count = 2;  // machines 0,2 share OS 0; 1,3 share OS 1
  const Corpus corpus(cfg);
  const auto& m0 = corpus.plan(0).extents();
  const auto& m2 = corpus.plan(2).extents();
  const auto& m1 = corpus.plan(1).extents();
  // Day-1 leading extents (OS base) identical for same-OS machines.
  EXPECT_EQ(m0[0], m2[0]);
  EXPECT_NE(m0[0], m1[0]);
}

TEST(Corpus, SnapshotsMostlyShareExtents) {
  const Corpus corpus(test_preset());
  const auto& cfg = corpus.config();
  // Compare machine 0 day 1 vs day 2 extent lists.
  const auto& day1 = corpus.plan(0).extents();
  const auto& day2 = corpus.plan(cfg.machines).extents();
  std::map<std::uint64_t, int> ids;
  for (const auto& e : day1) ids[e.content_id]++;
  std::size_t shared = 0;
  for (const auto& e : day2) {
    auto it = ids.find(e.content_id);
    if (it != ids.end() && it->second > 0) {
      --it->second;
      ++shared;
    }
  }
  const double share = static_cast<double>(shared) / day2.size();
  EXPECT_GT(share, 0.4);   // the bulk of the image persists day-over-day
  EXPECT_LE(share, 1.0);   // (a quiet day may leave an image untouched)
}

TEST(Corpus, RejectsZeroConfig) {
  CorpusConfig cfg = test_preset();
  cfg.machines = 0;
  EXPECT_THROW(Corpus{cfg}, std::invalid_argument);
}

TEST(Presets, Icpp13ScalesImageSize) {
  const auto cfg = icpp13_preset(196);
  EXPECT_EQ(cfg.machines, 14u);
  EXPECT_EQ(cfg.snapshots, 14u);
  EXPECT_EQ(cfg.image_bytes, 1u << 20);
}

}  // namespace
}  // namespace mhd
