// Calibration tests: the synthetic corpus must stay in the regime that
// makes the paper reproduction meaningful (DESIGN.md section 2 and the
// scaling argument in EXPERIMENTS.md). These tests pin the generator's
// intrinsic duplication so future tuning can't silently drift the
// benchmarks out of the paper's operating point.
#include <gtest/gtest.h>

#include <map>

#include "mhd/workload/presets.h"

namespace mhd {
namespace {

/// Intrinsic (extent-level) duplication of a corpus: total bytes over
/// distinct content bytes — the ceiling any chunking algorithm can reach.
double intrinsic_der(const Corpus& corpus) {
  std::map<std::uint64_t, std::uint64_t> content;  // id -> max extent end
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < corpus.files().size(); ++i) {
    for (const auto& e : corpus.plan(i).extents()) {
      total += e.length;
      auto& end = content[e.content_id];
      end = std::max(end, e.offset + e.length);
    }
  }
  std::uint64_t unique = 0;
  for (const auto& [id, end] : content) {
    (void)id;
    unique += end;
  }
  return static_cast<double>(total) / static_cast<double>(unique);
}

TEST(Calibration, Icpp13PresetIntrinsicDerNearPaper) {
  const Corpus corpus(icpp13_preset(48, 1));
  const double der = intrinsic_der(corpus);
  // The paper's best measured data-only DER is 4.15; the intrinsic ceiling
  // must sit somewhat above it so chunk-boundary losses land near 4.
  EXPECT_GT(der, 4.0);
  EXPECT_LT(der, 6.5);
}

TEST(Calibration, IntrinsicDerStableAcrossSeeds) {
  const double d1 = intrinsic_der(Corpus(icpp13_preset(24, 1)));
  const double d2 = intrinsic_der(Corpus(icpp13_preset(24, 99)));
  EXPECT_NEAR(d1, d2, d1 * 0.25);
}

TEST(Calibration, QuietDaysCreateFullyDuplicateSnapshots) {
  // With 50% quiet days some machine-day pairs should change nothing or
  // almost nothing: count day-over-day identical extent lists.
  const Corpus corpus(icpp13_preset(24, 3));
  const auto& cfg = corpus.config();
  int unchanged_extents_total = 0;
  int comparisons = 0;
  for (std::uint32_t m = 0; m < cfg.machines; ++m) {
    for (std::uint32_t s = 1; s < cfg.snapshots; ++s) {
      const auto& prev =
          corpus.plan((s - 1) * cfg.machines + m).extents();
      const auto& cur = corpus.plan(s * cfg.machines + m).extents();
      std::size_t same = 0;
      for (std::size_t i = 0; i < std::min(prev.size(), cur.size()); ++i) {
        same += (prev[i] == cur[i]);
      }
      unchanged_extents_total += static_cast<int>(same);
      comparisons += static_cast<int>(std::max(prev.size(), cur.size()));
    }
  }
  // The bulk of every image persists day over day.
  EXPECT_GT(static_cast<double>(unchanged_extents_total) / comparisons, 0.5);
}

TEST(Calibration, MutationsIncludeInsertionsAndDeletions) {
  const Corpus corpus(icpp13_preset(24, 5));
  const auto& cfg = corpus.config();
  bool grew = false, shrank = false;
  for (std::uint32_t m = 0; m < cfg.machines && !(grew && shrank); ++m) {
    for (std::uint32_t s = 1; s < cfg.snapshots; ++s) {
      const auto prev_bytes =
          corpus.plan((s - 1) * cfg.machines + m).total_bytes();
      const auto cur_bytes = corpus.plan(s * cfg.machines + m).total_bytes();
      grew |= cur_bytes > prev_bytes;
      shrank |= cur_bytes < prev_bytes;
    }
  }
  EXPECT_TRUE(grew);    // insertions shift content forward
  EXPECT_TRUE(shrank);  // deletions shift content backward
}

}  // namespace
}  // namespace mhd
