#include "mhd/workload/block_source.h"

#include <gtest/gtest.h>

namespace mhd {
namespace {

TEST(BlockSource, Deterministic) {
  BlockSource a(42), b(42);
  ByteVec x(1000), y(1000);
  a.fill(7, 0, x);
  b.fill(7, 0, y);
  EXPECT_EQ(x, y);
}

TEST(BlockSource, DifferentIdsDiffer) {
  BlockSource s(1);
  ByteVec x(256), y(256);
  s.fill(1, 0, x);
  s.fill(2, 0, y);
  EXPECT_NE(x, y);
}

TEST(BlockSource, DifferentSeedsDiffer) {
  BlockSource a(1), b(2);
  ByteVec x(256), y(256);
  a.fill(7, 0, x);
  b.fill(7, 0, y);
  EXPECT_NE(x, y);
}

TEST(BlockSource, WindowedReadsAgreeWithWholeRead) {
  BlockSource s(9);
  ByteVec whole(4096);
  s.fill(3, 0, whole);
  // Read the same content in odd-sized, odd-offset windows.
  std::uint64_t off = 0;
  std::size_t sizes[] = {1, 7, 8, 13, 64, 100, 1000};
  std::size_t si = 0;
  while (off < whole.size()) {
    const std::size_t n =
        std::min<std::size_t>(sizes[si++ % 7], whole.size() - off);
    ByteVec window(n);
    s.fill(3, off, window);
    EXPECT_TRUE(equal(window, ByteSpan(whole.data() + off, n)))
        << "offset " << off;
    off += n;
  }
}

TEST(BlockSource, ContentLooksIncompressible) {
  BlockSource s(5);
  ByteVec data(1 << 16);
  s.fill(1, 0, data);
  // Byte histogram should be roughly flat.
  std::array<int, 256> histogram{};
  for (Byte b : data) ++histogram[b];
  const double expected = data.size() / 256.0;
  for (int count : histogram) {
    EXPECT_GT(count, expected * 0.5);
    EXPECT_LT(count, expected * 1.5);
  }
}

}  // namespace
}  // namespace mhd
