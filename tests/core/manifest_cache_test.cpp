#include "mhd/core/manifest_cache.h"

#include <gtest/gtest.h>

#include "mhd/store/memory_backend.h"
#include "mhd/hash/sha1.h"

namespace mhd {
namespace {

Digest digest_of(const std::string& s) { return Sha1::hash(as_bytes(s)); }

Manifest make_manifest(const std::string& chunk, int entries) {
  Manifest m(digest_of(chunk));
  std::uint64_t off = 0;
  for (int i = 0; i < entries; ++i) {
    m.add({digest_of(chunk + "#" + std::to_string(i)), off, 100, 1, i == 0});
    off += 100;
  }
  return m;
}

class ManifestCacheTest : public ::testing::Test {
 protected:
  MemoryBackend backend_;
  ObjectStore store_{backend_};
};

TEST_F(ManifestCacheTest, InsertAndLookupHash) {
  ManifestCache cache(store_, 4, true);
  cache.insert(digest_of("m1"), make_manifest("m1", 3), false);
  const auto hit = cache.lookup_hash(digest_of("m1#1"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->manifest_name, digest_of("m1"));
  EXPECT_EQ(hit->entry_index, 1u);
  EXPECT_FALSE(cache.lookup_hash(digest_of("absent")).has_value());
}

TEST_F(ManifestCacheTest, LoadFromStoreCountsLoads) {
  const Manifest m = make_manifest("m2", 2);
  store_.put_manifest(digest_of("m2").hex(), m.serialize(true));
  ManifestCache cache(store_, 4, true);
  EXPECT_EQ(cache.manifest_loads(), 0u);
  ASSERT_NE(cache.load(digest_of("m2")), nullptr);
  EXPECT_EQ(cache.manifest_loads(), 1u);
  // Second load hits the cache: no new disk read.
  ASSERT_NE(cache.load(digest_of("m2")), nullptr);
  EXPECT_EQ(cache.manifest_loads(), 1u);
  EXPECT_EQ(cache.load(digest_of("missing")), nullptr);
}

TEST_F(ManifestCacheTest, DirtyManifestWrittenBackOnEviction) {
  ManifestCache cache(store_, 1, true);
  cache.insert(digest_of("m1"), make_manifest("m1", 2), /*dirty=*/true);
  cache.insert(digest_of("m2"), make_manifest("m2", 2), false);  // evicts m1
  EXPECT_TRUE(backend_.exists(Ns::kManifest, digest_of("m1").hex()));
  EXPECT_EQ(store_.stats().count(AccessKind::kManifestOut), 1u);
}

TEST_F(ManifestCacheTest, CleanManifestNotWrittenOnEviction) {
  ManifestCache cache(store_, 1, true);
  cache.insert(digest_of("m1"), make_manifest("m1", 2), /*dirty=*/false);
  cache.insert(digest_of("m2"), make_manifest("m2", 2), false);
  EXPECT_FALSE(backend_.exists(Ns::kManifest, digest_of("m1").hex()));
}

TEST_F(ManifestCacheTest, EvictionRemovesHashesFromGlobalIndex) {
  ManifestCache cache(store_, 1, true);
  cache.insert(digest_of("m1"), make_manifest("m1", 2), false);
  ASSERT_TRUE(cache.lookup_hash(digest_of("m1#0")).has_value());
  cache.insert(digest_of("m2"), make_manifest("m2", 2), false);
  EXPECT_FALSE(cache.lookup_hash(digest_of("m1#0")).has_value());
  EXPECT_TRUE(cache.lookup_hash(digest_of("m2#0")).has_value());
}

TEST_F(ManifestCacheTest, HhrMutationReindexedAfterInvalidate) {
  ManifestCache cache(store_, 4, true);
  Manifest* m = cache.insert(digest_of("m1"), make_manifest("m1", 2), false);
  ASSERT_TRUE(cache.lookup_hash(digest_of("m1#1")).has_value());

  // Simulate HHR: replace entry 1 with two new entries.
  m->entries().erase(m->entries().begin() + 1);
  m->entries().push_back({digest_of("new-a"), 100, 50, 1, false});
  m->entries().push_back({digest_of("new-b"), 150, 50, 1, false});
  m->set_dirty();
  cache.mark_dirty(digest_of("m1"));
  cache.invalidate_index(digest_of("m1"));

  // Old hash self-heals away; new hashes become visible.
  EXPECT_TRUE(cache.lookup_hash(digest_of("new-a")).has_value());
  EXPECT_TRUE(cache.lookup_hash(digest_of("new-b")).has_value());
  EXPECT_FALSE(cache.lookup_hash(digest_of("m1#1")).has_value());
}

TEST_F(ManifestCacheTest, FlushWritesAllDirty) {
  ManifestCache cache(store_, 8, true);
  cache.insert(digest_of("m1"), make_manifest("m1", 2), true);
  cache.insert(digest_of("m2"), make_manifest("m2", 2), true);
  cache.insert(digest_of("m3"), make_manifest("m3", 2), false);
  cache.flush();
  EXPECT_EQ(store_.stats().count(AccessKind::kManifestOut), 2u);
  // Flushed entries stay cached and are now clean: flushing again is a
  // no-op.
  cache.flush();
  EXPECT_EQ(store_.stats().count(AccessKind::kManifestOut), 2u);
}

TEST_F(ManifestCacheTest, ByteBudgetEvictsBulkyManifests) {
  // Budget for roughly one 10-entry manifest (~64 + 370 bytes each).
  ManifestCache cache(store_, 100, true, /*max_bytes=*/600);
  cache.insert(digest_of("m1"), make_manifest("m1", 10), false);
  cache.insert(digest_of("m2"), make_manifest("m2", 10), false);
  EXPECT_EQ(cache.size(), 1u);  // m1 evicted to stay within budget
  EXPECT_FALSE(cache.lookup_hash(digest_of("m1#0")).has_value());
  EXPECT_TRUE(cache.lookup_hash(digest_of("m2#0")).has_value());
}

TEST_F(ManifestCacheTest, RoundTripThroughStorePreservesEntries) {
  const Manifest original = make_manifest("m9", 5);
  {
    ManifestCache cache(store_, 2, true);
    cache.insert(digest_of("m9"), original, true);
    cache.flush();
  }
  ManifestCache cache2(store_, 2, true);
  Manifest* loaded = cache2.load(digest_of("m9"));
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->entries(), original.entries());
}

}  // namespace
}  // namespace mhd
