#include "mhd/core/mhd_engine.h"

#include <gtest/gtest.h>

#include "../dedup/engine_test_util.h"
#include "mhd/dedup/cdc_engine.h"
#include "mhd/store/memory_backend.h"
#include "mhd/workload/presets.h"

namespace mhd {
namespace {

using testutil::NamedFile;
using testutil::random_bytes;

EngineConfig small_config() {
  EngineConfig cfg;
  cfg.ecs = 512;
  cfg.sd = 8;
  cfg.bloom_bytes = 64 * 1024;
  return cfg;
}

TEST(MhdEngine, ReconstructsSingleFile) {
  MemoryBackend backend;
  ObjectStore store(backend);
  MhdEngine engine(store, small_config());
  const std::vector<NamedFile> files = {{"a.img", random_bytes(100000, 1)}};
  testutil::run_files(engine, files);
  testutil::expect_reconstructs(engine, files);
}

TEST(MhdEngine, ShmManifestShape) {
  MemoryBackend backend;
  ObjectStore store(backend);
  MhdEngine engine(store, small_config());
  const std::vector<NamedFile> files = {{"a.img", random_bytes(100000, 2)}};
  testutil::run_files(engine, files);

  const auto& c = engine.counters();
  const std::uint64_t groups = (c.stored_chunks + 7) / 8;  // ceil(N/SD)
  // One hook file per SD-group of stored chunks.
  EXPECT_EQ(backend.object_count(Ns::kHook), groups);
  // Two manifest entries per full group (hook + merged hash).
  const auto raw = backend.get(Ns::kManifest,
                               DedupEngine::file_digest("a.img").hex());
  ASSERT_TRUE(raw.has_value());
  const auto manifest = Manifest::deserialize(*raw);
  ASSERT_TRUE(manifest.has_value());
  EXPECT_LE(manifest->entries().size(), 2 * groups);
  EXPECT_GE(manifest->entries().size(), groups);
  EXPECT_TRUE(manifest->regions_contiguous());
  // Hook entries are single chunks; merged entries span several.
  std::uint64_t hooks = 0, merged = 0;
  for (const auto& e : manifest->entries()) {
    if (e.is_hook) {
      ++hooks;
      EXPECT_EQ(e.chunk_count, 1u);
    } else {
      ++merged;
      EXPECT_GT(e.chunk_count, 1u);
    }
  }
  EXPECT_EQ(hooks, groups);
  EXPECT_EQ(merged, c.shm_merged_hashes);
}

TEST(MhdEngine, IdenticalSecondFileFullyDeduplicates) {
  MemoryBackend backend;
  ObjectStore store(backend);
  MhdEngine engine(store, small_config());
  const ByteVec data = random_bytes(200000, 3);
  const std::vector<NamedFile> files = {{"a.img", data}, {"b.img", data}};
  testutil::run_files(engine, files);
  testutil::expect_reconstructs(engine, files);

  const auto& c = engine.counters();
  EXPECT_EQ(c.files_with_data, 1u);
  EXPECT_EQ(c.dup_bytes, data.size());
  // One anchored slice covers the whole duplicate file.
  EXPECT_EQ(c.dup_slices, 1u);
  // The merged hashes matched directly: no HHR, no chunk reloads.
  EXPECT_EQ(c.hhr_operations, 0u);
  EXPECT_EQ(backend.content_bytes(Ns::kDiskChunk), data.size());
}

TEST(MhdEngine, MiddleEditTriggersHhrAndRecoversBothSides) {
  MemoryBackend backend;
  ObjectStore store(backend);
  MhdEngine engine(store, small_config());
  ByteVec a = random_bytes(200000, 4);
  ByteVec b = a;
  // Replace a region in the middle (same length, new content).
  const ByteVec patch = random_bytes(10000, 5);
  std::copy(patch.begin(), patch.end(), b.begin() + 90000);

  const std::vector<NamedFile> files = {{"a.img", a}, {"b.img", b}};
  testutil::run_files(engine, files);
  testutil::expect_reconstructs(engine, files);

  const auto& c = engine.counters();
  // Both flanks of the edit deduplicate; only ~10KB (plus chunk-boundary
  // spill) is stored for file b.
  EXPECT_GT(c.dup_bytes, 160000u);
  EXPECT_GE(c.hhr_operations, 1u);
  EXPECT_GE(c.hhr_chunk_reloads, 1u);
  EXPECT_LT(backend.content_bytes(Ns::kDiskChunk), a.size() + 40000);
}

TEST(MhdEngine, EdgeHashPreventsRepeatHhr) {
  MemoryBackend backend;
  ObjectStore store(backend);
  MhdEngine engine(store, small_config());
  ByteVec a = random_bytes(200000, 6);
  ByteVec b = a;
  const ByteVec patch = random_bytes(8000, 7);
  std::copy(patch.begin(), patch.end(), b.begin() + 100000);

  std::vector<NamedFile> files = {{"a.img", a}, {"b.img", b}};
  testutil::run_files(engine, files);
  const std::uint64_t hhr_after_b = engine.counters().hhr_operations;
  ASSERT_GE(hhr_after_b, 1u);

  // The same modified image appears again (next day's backup): its slices
  // match the re-chunked entries by hash, so no new reloads are needed.
  MemorySource src(b);
  engine.add_file("c.img", src);
  engine.finish();
  EXPECT_EQ(engine.counters().hhr_operations, hhr_after_b);

  files.push_back({"c.img", b});
  testutil::expect_reconstructs(engine, files);
}

TEST(MhdEngine, CountersAreConsistent) {
  MemoryBackend backend;
  ObjectStore store(backend);
  MhdEngine engine(store, small_config());
  const Corpus corpus(test_preset(8));
  testutil::run_corpus(engine, corpus);
  const auto& c = engine.counters();
  EXPECT_EQ(c.input_files, corpus.files().size());
  EXPECT_EQ(c.input_bytes, corpus.total_bytes());
  EXPECT_EQ(c.input_chunks, c.stored_chunks + c.dup_chunks);
  EXPECT_GE(c.dup_chunks, c.dup_slices);
  EXPECT_EQ(backend.object_count(Ns::kFileManifest), c.input_files);
}

TEST(MhdEngine, CorpusReconstructs) {
  MemoryBackend backend;
  ObjectStore store(backend);
  MhdEngine engine(store, small_config());
  const Corpus corpus(test_preset(9));
  testutil::run_corpus(engine, corpus);
  testutil::expect_reconstructs_corpus(engine, corpus);
  EXPECT_LT(backend.content_bytes(Ns::kDiskChunk), corpus.total_bytes() / 2);
}

TEST(MhdEngine, FarLessMetadataThanCdc) {
  const Corpus corpus(test_preset(10));

  MemoryBackend mb, cb;
  ObjectStore ms(mb), cs(cb);
  MhdEngine mhd(ms, small_config());
  CdcEngine cdc(cs, small_config());
  testutil::run_corpus(mhd, corpus);
  testutil::run_corpus(cdc, corpus);

  const auto meta_bytes = [](const MemoryBackend& b) {
    return b.content_bytes(Ns::kHook) + b.content_bytes(Ns::kManifest) +
           b.object_count(Ns::kHook) * StorageBackend::kInodeBytes;
  };
  // SD=8 should cut hook+manifest metadata by roughly the sample distance.
  EXPECT_LT(meta_bytes(mb), meta_bytes(cb) / 3);
  // While still finding a comparable amount of duplication.
  EXPECT_GT(mhd.counters().dup_bytes, cdc.counters().dup_bytes / 2);
}

TEST(MhdEngine, WorksWithoutBloom) {
  MemoryBackend backend;
  ObjectStore store(backend);
  EngineConfig cfg = small_config();
  cfg.use_bloom = false;
  MhdEngine engine(store, cfg);
  const ByteVec data = random_bytes(150000, 11);
  const std::vector<NamedFile> files = {{"a", data}, {"b", data}};
  testutil::run_files(engine, files);
  testutil::expect_reconstructs(engine, files);
  EXPECT_EQ(engine.counters().dup_bytes, data.size());
}

TEST(MhdEngine, StatePersistsAcrossEngineInstances) {
  MemoryBackend backend;
  ByteVec a = random_bytes(120000, 12);
  ByteVec b = a;
  const ByteVec patch = random_bytes(5000, 13);
  std::copy(patch.begin(), patch.end(), b.begin() + 60000);
  {
    ObjectStore store(backend);
    MhdEngine engine(store, small_config());
    const std::vector<NamedFile> files = {{"a", a}, {"b", b}};
    testutil::run_files(engine, files);  // finish() flushes dirty manifests
  }
  // A fresh engine over the same backend restores everything (validates
  // that HHR-updated manifests and all data reached the store).
  ObjectStore store2(backend);
  MhdEngine engine2(store2, small_config());
  const auto ra = engine2.reconstruct("a");
  const auto rb = engine2.reconstruct("b");
  ASSERT_TRUE(ra.has_value());
  ASSERT_TRUE(rb.has_value());
  EXPECT_TRUE(equal(*ra, a));
  EXPECT_TRUE(equal(*rb, b));
}

TEST(MhdEngine, EmptyAndTinyFiles) {
  MemoryBackend backend;
  ObjectStore store(backend);
  MhdEngine engine(store, small_config());
  const std::vector<NamedFile> files = {
      {"empty", {}}, {"tiny", random_bytes(10, 14)}, {"small", random_bytes(700, 15)}};
  testutil::run_files(engine, files);
  testutil::expect_reconstructs(engine, files);
}

// Ablation configurations must preserve correctness.
class MhdAblationTest : public ::testing::TestWithParam<int> {};

TEST_P(MhdAblationTest, ReconstructsUnderAblation) {
  EngineConfig cfg = small_config();
  switch (GetParam()) {
    case 0: cfg.enable_shm = false; break;
    case 1: cfg.enable_edge_hash = false; break;
    case 2: cfg.enable_backward_extension = false; break;
    case 3: cfg.use_bloom = false; break;
  }
  MemoryBackend backend;
  ObjectStore store(backend);
  MhdEngine engine(store, cfg);
  ByteVec a = random_bytes(150000, 16);
  ByteVec b = a;
  const ByteVec patch = random_bytes(7000, 17);
  std::copy(patch.begin(), patch.end(), b.begin() + 70000);
  const std::vector<NamedFile> files = {{"a", a}, {"b", b}};
  testutil::run_files(engine, files);
  testutil::expect_reconstructs(engine, files);
  EXPECT_GT(engine.counters().dup_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Ablations, MhdAblationTest,
                         ::testing::Values(0, 1, 2, 3));

// Paper parameterization sweep: reconstruction holds across ECS x SD.
class MhdParamTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(MhdParamTest, ReconstructsAcrossEcsSd) {
  EngineConfig cfg;
  cfg.ecs = std::get<0>(GetParam());
  cfg.sd = std::get<1>(GetParam());
  cfg.bloom_bytes = 64 * 1024;
  MemoryBackend backend;
  ObjectStore store(backend);
  MhdEngine engine(store, cfg);
  const Corpus corpus(test_preset(std::get<0>(GetParam()) + std::get<1>(GetParam())));
  testutil::run_corpus(engine, corpus);
  testutil::expect_reconstructs_corpus(engine, corpus);
  const auto& c = engine.counters();
  EXPECT_EQ(c.input_chunks, c.stored_chunks + c.dup_chunks);
}

INSTANTIATE_TEST_SUITE_P(
    EcsSdSweep, MhdParamTest,
    ::testing::Combine(::testing::Values(256u, 1024u, 4096u),
                       ::testing::Values(2u, 8u, 32u)));


// The engine must be chunker-agnostic: MHD's SHM/BME/HHR machinery only
// assumes content-defined cut points, so it runs unchanged on TTTD and
// Gear/FastCDC.
class MhdChunkerKindTest : public ::testing::TestWithParam<ChunkerKind> {};

TEST_P(MhdChunkerKindTest, ReconstructsOnAlternativeChunkers) {
  EngineConfig cfg = small_config();
  cfg.chunker = GetParam();
  MemoryBackend backend;
  ObjectStore store(backend);
  MhdEngine engine(store, cfg);
  ByteVec a = random_bytes(180000, 41);
  ByteVec b = a;
  const ByteVec patch = random_bytes(6000, 42);
  std::copy(patch.begin(), patch.end(), b.begin() + 90000);
  const std::vector<NamedFile> files = {{"a", a}, {"b", b}};
  testutil::run_files(engine, files);
  testutil::expect_reconstructs(engine, files);
  EXPECT_GT(engine.counters().dup_bytes, 120000u);
}

INSTANTIATE_TEST_SUITE_P(Chunkers, MhdChunkerKindTest,
                         ::testing::Values(ChunkerKind::kRabin,
                                           ChunkerKind::kTttd,
                                           ChunkerKind::kGear));

}  // namespace
}  // namespace mhd
