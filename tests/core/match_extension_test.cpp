// Direct unit tests of Bi-Directional Match Extension and Hysteresis Hash
// Re-chunking against hand-built manifests (the Fig. 5/6 scenarios).
#include "mhd/core/match_extension.h"

#include <gtest/gtest.h>

#include "mhd/store/memory_backend.h"
#include "mhd/util/random.h"

namespace mhd {
namespace {

constexpr std::size_t kChunk = 100;  // bytes per synthetic chunk

ByteVec chunk_content(int id) {
  Xoshiro256 rng(1000 + id);
  ByteVec out(kChunk);
  for (auto& b : out) b = static_cast<Byte>(rng());
  return out;
}

Digest hash_of(ByteSpan b) { return Sha1::hash(b); }

/// A stream chunk with arbitrary bytes (for boundaries that do not line up
/// with the synthetic kChunk grid).
StreamChunk custom(ByteVec bytes, std::uint64_t file_offset) {
  StreamChunk c;
  c.bytes = std::move(bytes);
  c.hash = hash_of(c.bytes);
  c.file_offset = file_offset;
  return c;
}

ByteVec fresh_bytes(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  ByteVec out(n);
  for (auto& b : out) b = static_cast<Byte>(rng());
  return out;
}

ByteVec concat_chunks(int first, int last) {
  ByteVec out;
  for (int id = first; id <= last; ++id) append(out, chunk_content(id));
  return out;
}

// Fixture: an old DiskChunk of 10 chunks c0..c9 with the SHM manifest
// shape [hook c0][merged c1-4][hook c5][merged c6-9].
class MatchExtensionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    name_ = Sha1::hash(as_bytes("oldfile"));
    Manifest manifest(name_);
    ByteVec all;
    std::uint64_t off = 0;
    auto add_hook = [&](int id) {
      const ByteVec c = chunk_content(id);
      manifest.add({hash_of(c), off, kChunk, 1, true});
      append(all, c);
      off += kChunk;
    };
    auto add_merged = [&](int first, int last) {
      Sha1 h;
      const std::uint64_t start = off;
      for (int id = first; id <= last; ++id) {
        const ByteVec c = chunk_content(id);
        h.update(c);
        append(all, c);
        off += kChunk;
      }
      manifest.add({h.digest(), start,
                    static_cast<std::uint32_t>(off - start),
                    static_cast<std::uint32_t>(last - first + 1), false});
    };
    add_hook(0);
    add_merged(1, 4);
    add_hook(5);
    add_merged(6, 9);

    auto w = store_->open_chunk(name_.hex());
    w.write(all);
    w.close();
    cache_ = std::make_unique<ManifestCache>(*store_, 8, true);
    manifest_ = cache_->insert(name_, std::move(manifest), false);
  }

  /// An incoming chunk with content `id` at the given file offset.
  static StreamChunk incoming(int id, std::uint64_t file_offset) {
    StreamChunk c;
    c.bytes = chunk_content(id);
    c.hash = hash_of(c.bytes);
    c.file_offset = file_offset;
    return c;
  }

  MatchExtender::Outcome run_extend(const StreamChunk& anchor,
                                    std::deque<StreamChunk>& pending,
                                    std::deque<StreamChunk> incoming_stream) {
    MatchExtender extender(*store_, *cache_, cfg_, counters_);
    auto loc = cache_->lookup_hash(anchor.hash);
    EXPECT_TRUE(loc.has_value());
    auto pull = [&]() -> std::optional<StreamChunk> {
      if (incoming_stream.empty()) return std::nullopt;
      StreamChunk c = std::move(incoming_stream.front());
      incoming_stream.pop_front();
      return c;
    };
    return extender.extend(*loc, anchor, pending, pull);
  }

  EngineConfig cfg_;
  EngineCounters counters_;
  MemoryBackend backend_;
  std::unique_ptr<ObjectStore> store_ = std::make_unique<ObjectStore>(backend_);
  std::unique_ptr<ManifestCache> cache_;
  Manifest* manifest_ = nullptr;
  Digest name_;
};

TEST_F(MatchExtensionTest, AnchorAloneProducesOneSegment) {
  std::deque<StreamChunk> pending;
  const auto out = run_extend(incoming(0, 5000), pending, {});
  ASSERT_EQ(out.dup_segments.size(), 1u);
  EXPECT_EQ(out.dup_segments[0].file_offset, 5000u);
  EXPECT_EQ(out.dup_segments[0].chunk_offset, 0u);
  EXPECT_EQ(out.dup_segments[0].length, kChunk);
  EXPECT_EQ(out.dup_chunks, 1u);
  EXPECT_EQ(counters_.hhr_operations, 0u);
}

TEST_F(MatchExtensionTest, BackwardFullEntryHashMatch) {
  // Pending holds c1..c4 contiguous, ending exactly at the anchor (c5).
  std::deque<StreamChunk> pending;
  for (int i = 1; i <= 4; ++i) {
    pending.push_back(incoming(i, 1000 + (i - 1) * kChunk));
  }
  const auto out = run_extend(incoming(5, 1000 + 4 * kChunk), pending, {});
  // Merged c1-4 matched by one recomputed hash; then hook c0 cannot match
  // (no pending left).
  EXPECT_EQ(out.dup_bytes, 5 * kChunk);
  EXPECT_TRUE(pending.empty());
  EXPECT_EQ(counters_.hhr_chunk_reloads, 0u);  // pure hash comparison
}

TEST_F(MatchExtensionTest, BackwardHhrSplitsMergedEntry) {
  // Pending: [N (fresh), c3, c4] — only the merged entry's suffix is
  // duplicate; Fig. 6's BME scenario.
  std::deque<StreamChunk> pending;
  pending.push_back(incoming(99, 2000));            // Chunk N3 analogue
  pending.push_back(incoming(3, 2000 + kChunk));
  pending.push_back(incoming(4, 2000 + 2 * kChunk));
  const auto out = run_extend(incoming(5, 2000 + 3 * kChunk), pending, {});

  EXPECT_EQ(out.dup_bytes, 3 * kChunk);  // c3, c4 + anchor c5
  EXPECT_EQ(counters_.hhr_operations, 1u);
  EXPECT_EQ(counters_.hhr_chunk_reloads, 1u);
  ASSERT_EQ(pending.size(), 1u);  // the fresh chunk stays buffered
  EXPECT_EQ(pending[0].file_offset, 2000u);

  // The merged entry c1-4 was re-chunked into remainder + EdgeHash + dup.
  const auto& entries = manifest_->entries();
  ASSERT_EQ(entries.size(), 6u);
  EXPECT_EQ(entries[1].size, kChunk);      // remainder (c1 region)
  EXPECT_GT(entries[1].chunk_count, 0u);
  EXPECT_EQ(entries[2].size, kChunk);      // EdgeHash (size of N)
  EXPECT_EQ(entries[2].chunk_count, 1u);
  EXPECT_EQ(entries[3].size, 2 * kChunk);  // duplicate part (c3,c4)
  EXPECT_TRUE(manifest_->regions_contiguous());
}

TEST_F(MatchExtensionTest, ForwardFullEntryAndStop) {
  // Anchor at c5; the stream continues with c6..c9 then fresh data.
  std::deque<StreamChunk> stream;
  for (int i = 6; i <= 9; ++i) {
    stream.push_back(incoming(i, 3000 + (i - 5) * kChunk));
  }
  stream.push_back(incoming(77, 3000 + 5 * kChunk));
  std::deque<StreamChunk> pending;
  const auto out = run_extend(incoming(5, 3000), pending, stream);

  EXPECT_EQ(out.dup_bytes, 5 * kChunk);  // c5 + merged c6-9
  // Extension stopped at the manifest end before the fresh chunk was ever
  // prefetched: nothing is left over (the chunk stays in the stream).
  EXPECT_TRUE(out.leftover.empty());
  EXPECT_EQ(counters_.hhr_operations, 0u);
}

TEST_F(MatchExtensionTest, ForwardHhrSplitsMergedPrefix) {
  // Stream after anchor: c6, c7, then fresh — forward HHR must split
  // merged c6-9 into [dup c6-7][edge][remainder].
  std::deque<StreamChunk> stream;
  stream.push_back(incoming(6, 3100));
  stream.push_back(incoming(7, 3200));
  stream.push_back(incoming(88, 3300));
  std::deque<StreamChunk> pending;
  const auto out = run_extend(incoming(5, 3000), pending, stream);

  EXPECT_EQ(out.dup_bytes, 3 * kChunk);  // c5 + c6 + c7
  EXPECT_EQ(counters_.hhr_operations, 1u);
  ASSERT_EQ(out.leftover.size(), 1u);  // the fresh chunk
  const auto& entries = manifest_->entries();
  // [c0][c1-4][c5][dup c6-7][edge][remainder]
  ASSERT_EQ(entries.size(), 6u);
  EXPECT_EQ(entries[3].size, 2 * kChunk);
  EXPECT_EQ(entries[4].chunk_count, 1u);
  EXPECT_TRUE(manifest_->regions_contiguous());
}

TEST_F(MatchExtensionTest, EdgeHashPreventsSecondReload) {
  // First pass: trigger the forward HHR.
  {
    std::deque<StreamChunk> stream = {incoming(6, 3100), incoming(7, 3200),
                                      incoming(88, 3300)};
    std::deque<StreamChunk> pending;
    run_extend(incoming(5, 3000), pending, stream);
  }
  const auto reloads_after_first = counters_.hhr_chunk_reloads;
  // Second identical slice: the dup entry (c6-7) hash-matches directly and
  // the EdgeHash mismatch stops extension without a byte reload.
  {
    std::deque<StreamChunk> stream = {incoming(6, 9100), incoming(7, 9200),
                                      incoming(88, 9300)};
    std::deque<StreamChunk> pending;
    const auto out = run_extend(incoming(5, 9000), pending, stream);
    EXPECT_EQ(out.dup_bytes, 3 * kChunk);
  }
  EXPECT_EQ(counters_.hhr_chunk_reloads, reloads_after_first);
}

// Regression for the gap bug: pending chunks that are NOT file-contiguous
// with the anchor must not be stitched into one duplicate segment even if
// their concatenated bytes would hash-match an old region.
TEST_F(MatchExtensionTest, NonContiguousPendingIsNotMatched) {
  std::deque<StreamChunk> pending;
  // c1..c4 with a hole between c2 and c3 (something was deduplicated away
  // in between) — their bytes still equal the old merged region.
  pending.push_back(incoming(1, 1000));
  pending.push_back(incoming(2, 1100));
  pending.push_back(incoming(3, 1500));  // gap!
  pending.push_back(incoming(4, 1600));
  const auto out = run_extend(incoming(5, 1700), pending, {});
  // Backward extension may recover at most the contiguous tail (c3,c4 via
  // HHR), never the full merged entry across the gap.
  for (const auto& seg : out.dup_segments) {
    EXPECT_LE(seg.length, 2 * kChunk);
  }
  // c1 and c2 must still be pending (they were not part of the slice).
  ASSERT_GE(pending.size(), 2u);
  EXPECT_EQ(pending[0].file_offset, 1000u);
  EXPECT_EQ(pending[1].file_offset, 1100u);
}

TEST_F(MatchExtensionTest, BackwardDisabledByAblation) {
  cfg_.enable_backward_extension = false;
  std::deque<StreamChunk> pending;
  for (int i = 1; i <= 4; ++i) {
    pending.push_back(incoming(i, 1000 + (i - 1) * kChunk));
  }
  const auto out = run_extend(incoming(5, 1400), pending, {});
  EXPECT_EQ(out.dup_bytes, kChunk);  // anchor only
  EXPECT_EQ(pending.size(), 4u);
}

// ---- HHR splice cardinality -------------------------------------------
//
// A merged-entry splice can replace one entry with two or three entries;
// a one-entry "splice" (full-entry byte match) is unreachable because any
// run of new chunks covering an entry byte-for-byte is caught by the
// whole-entry hash comparison before HHR is consulted. The tests below pin
// each cardinality down.

TEST_F(MatchExtensionTest, FullEntryMatchNeverTriggersHhr) {
  // The stream re-chunks c6..c9 as ONE 400-byte chunk — boundaries do not
  // line up with the original four — yet the run still covers merged c6-9
  // exactly, so the hash fast path must match it without loading bytes.
  std::deque<StreamChunk> stream;
  stream.push_back(custom(concat_chunks(6, 9), 3100));
  std::deque<StreamChunk> pending;
  const auto out = run_extend(incoming(5, 3000), pending, stream);

  EXPECT_EQ(out.dup_bytes, 5 * kChunk);  // c5 + the whole merged entry
  EXPECT_EQ(counters_.hhr_operations, 0u);
  EXPECT_EQ(counters_.hhr_chunk_reloads, 0u);
  EXPECT_EQ(manifest_->entries().size(), 4u);  // nothing spliced
}

TEST_F(MatchExtensionTest, ForwardHhrStreamEndSplitsInTwo) {
  // The stream ends after c6, c7: the matched prefix is cut short by the
  // end of input, not by a mismatching chunk, so there is no edge chunk to
  // pin — the splice is exactly [dup][remainder].
  std::deque<StreamChunk> stream = {incoming(6, 3100), incoming(7, 3200)};
  std::deque<StreamChunk> pending;
  const auto out = run_extend(incoming(5, 3000), pending, stream);

  EXPECT_EQ(out.dup_bytes, 3 * kChunk);  // c5 + c6 + c7
  EXPECT_EQ(counters_.hhr_operations, 1u);
  EXPECT_TRUE(out.leftover.empty());

  const auto& entries = manifest_->entries();
  ASSERT_EQ(entries.size(), 5u);  // [c0][c1-4][c5][dup c6-7][rem c8-9]
  EXPECT_EQ(entries[3].size, 2 * kChunk);
  EXPECT_EQ(entries[3].chunk_count, 2u);
  EXPECT_EQ(entries[3].hash, hash_of(concat_chunks(6, 7)));
  EXPECT_EQ(entries[4].size, 2 * kChunk);
  EXPECT_EQ(entries[4].chunk_count, 2u);
  EXPECT_EQ(entries[4].hash, hash_of(concat_chunks(8, 9)));
  EXPECT_TRUE(manifest_->regions_contiguous());
}

TEST_F(MatchExtensionTest, ForwardHhrEdgeReachingEntryEndSplitsInTwo) {
  // The duplicate prefix (c6..c8 as one chunk) leaves only 100 bytes of
  // the entry; the mismatching chunk is larger, so the EdgeHash block is
  // clamped to the entry end and absorbs the whole remainder — the splice
  // is exactly [dup][edge] with no remainder entry.
  std::deque<StreamChunk> stream;
  stream.push_back(custom(concat_chunks(6, 8), 3100));
  stream.push_back(custom(fresh_bytes(150, 555), 3400));
  std::deque<StreamChunk> pending;
  const auto out = run_extend(incoming(5, 3000), pending, stream);

  EXPECT_EQ(out.dup_bytes, 4 * kChunk);  // c5 + c6..c8
  EXPECT_EQ(counters_.hhr_operations, 1u);
  ASSERT_EQ(out.leftover.size(), 1u);  // the fresh chunk
  EXPECT_EQ(out.leftover[0].file_offset, 3400u);

  const auto& entries = manifest_->entries();
  ASSERT_EQ(entries.size(), 5u);  // [c0][c1-4][c5][dup c6-8][edge c9]
  EXPECT_EQ(entries[3].size, 3 * kChunk);
  EXPECT_EQ(entries[3].hash, hash_of(concat_chunks(6, 8)));
  EXPECT_EQ(entries[4].size, kChunk);  // clamped edge == old c9 region
  EXPECT_EQ(entries[4].chunk_count, 1u);
  EXPECT_EQ(entries[4].hash, hash_of(chunk_content(9)));
  EXPECT_TRUE(manifest_->regions_contiguous());
}

TEST_F(MatchExtensionTest, BackwardHhrTailOnlySplitsInTwo) {
  // Only c4 is buffered before the anchor: the matched tail is bounded by
  // the start of the pending buffer, not by a mismatch, so there is no
  // edge chunk — the splice is exactly [remainder][dup].
  std::deque<StreamChunk> pending = {incoming(4, 4400)};
  const auto out = run_extend(incoming(5, 4500), pending, {});

  EXPECT_EQ(out.dup_bytes, 2 * kChunk);  // c4 + anchor c5
  EXPECT_EQ(counters_.hhr_operations, 1u);
  EXPECT_TRUE(pending.empty());

  const auto& entries = manifest_->entries();
  ASSERT_EQ(entries.size(), 5u);  // [c0][rem c1-3][dup c4][c5][c6-9]
  EXPECT_EQ(entries[1].size, 3 * kChunk);
  EXPECT_EQ(entries[1].chunk_count, 3u);
  EXPECT_EQ(entries[1].hash, hash_of(concat_chunks(1, 3)));
  EXPECT_EQ(entries[2].size, kChunk);
  EXPECT_EQ(entries[2].chunk_count, 1u);
  EXPECT_EQ(entries[2].hash, hash_of(chunk_content(4)));
  EXPECT_TRUE(manifest_->regions_contiguous());
}

TEST_F(MatchExtensionTest, BackwardEdgeHashPreventsSecondReload) {
  // First pass: backward HHR splits merged c1-4 into [rem][edge][dup] and
  // pins the edge with the fresh chunk's size.
  {
    std::deque<StreamChunk> pending = {incoming(99, 2000), incoming(3, 2100),
                                       incoming(4, 2200)};
    const auto out = run_extend(incoming(5, 2300), pending, {});
    EXPECT_EQ(out.dup_bytes, 3 * kChunk);
  }
  EXPECT_EQ(counters_.hhr_chunk_reloads, 1u);
  ASSERT_EQ(manifest_->entries().size(), 6u);

  // Second identical slice at new offsets: the dup entry (c3,c4) now
  // hash-matches directly, and backward extension stops at the single-chunk
  // EdgeHash entry without re-loading any old bytes or re-splicing.
  {
    std::deque<StreamChunk> pending = {incoming(99, 9000), incoming(3, 9100),
                                       incoming(4, 9200)};
    const auto out = run_extend(incoming(5, 9300), pending, {});
    EXPECT_EQ(out.dup_bytes, 3 * kChunk);
    ASSERT_EQ(pending.size(), 1u);  // the fresh chunk survives again
    EXPECT_EQ(pending[0].file_offset, 9000u);
  }
  EXPECT_EQ(counters_.hhr_chunk_reloads, 1u);  // no second reload
  EXPECT_EQ(counters_.hhr_operations, 1u);     // no second splice
  EXPECT_EQ(manifest_->entries().size(), 6u);
}

TEST_F(MatchExtensionTest, EdgeHashDisabledStillCorrect) {
  cfg_.enable_edge_hash = false;
  std::deque<StreamChunk> pending;
  pending.push_back(incoming(99, 2000));
  pending.push_back(incoming(3, 2100));
  pending.push_back(incoming(4, 2200));
  const auto out = run_extend(incoming(5, 2300), pending, {});
  EXPECT_EQ(out.dup_bytes, 3 * kChunk);
  // Without the EdgeHash the split is [remainder][dup] only.
  EXPECT_TRUE(manifest_->regions_contiguous());
}

}  // namespace
}  // namespace mhd
