#include "mhd/util/flags.h"

#include <stdexcept>

#include <gtest/gtest.h>

namespace mhd {
namespace {

Flags make_flags(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, ParsesKeyValue) {
  const auto f = make_flags({"--size_mb=64", "--name=mhd"});
  EXPECT_EQ(f.get_int("size_mb", 0), 64);
  EXPECT_EQ(f.get("name", ""), "mhd");
}

TEST(Flags, DefaultsWhenAbsent) {
  const auto f = make_flags({});
  EXPECT_EQ(f.get_int("missing", 7), 7);
  EXPECT_EQ(f.get("missing", "d"), "d");
  EXPECT_TRUE(f.get_bool("missing", true));
}

TEST(Flags, BareFlagIsTrue) {
  const auto f = make_flags({"--verbose"});
  EXPECT_TRUE(f.get_bool("verbose", false));
}

TEST(Flags, ParsesDoubles) {
  const auto f = make_flags({"--rate=0.25"});
  EXPECT_DOUBLE_EQ(f.get_double("rate", 0), 0.25);
}

TEST(Flags, ParsesIntList) {
  const auto f = make_flags({"--ecs=512,1024,2048"});
  EXPECT_EQ(f.get_int_list("ecs", {}),
            (std::vector<std::int64_t>{512, 1024, 2048}));
}

TEST(Flags, IntListDefault) {
  const auto f = make_flags({});
  EXPECT_EQ(f.get_int_list("ecs", {1, 2}), (std::vector<std::int64_t>{1, 2}));
}

TEST(Flags, ChoiceAcceptsAllowedValue) {
  const auto f = make_flags({"--chunker-impl=simd"});
  EXPECT_EQ(f.get_choice("chunker-impl", {"auto", "scalar", "simd"}, "auto"),
            "simd");
}

TEST(Flags, ChoiceDefaultsWhenAbsent) {
  const auto f = make_flags({});
  EXPECT_EQ(f.get_choice("chunker-impl", {"auto", "scalar", "simd"}, "auto"),
            "auto");
}

TEST(Flags, ChoiceRejectsUnknownValue) {
  const auto f = make_flags({"--chunker-impl=sse9"});
  EXPECT_THROW(
      f.get_choice("chunker-impl", {"auto", "scalar", "simd"}, "auto"),
      std::invalid_argument);
}

TEST(Flags, HashImplChoiceVocabulary) {
  for (const char* v : {"auto", "shani", "simd", "portable"}) {
    const auto f = make_flags({std::string("--hash-impl=") + v});
    EXPECT_EQ(f.get_choice("hash-impl", {"auto", "shani", "simd", "portable"},
                           "auto"),
              v);
  }
  const auto bad = make_flags({"--hash-impl=sha256"});
  EXPECT_THROW(
      bad.get_choice("hash-impl", {"auto", "shani", "simd", "portable"},
                     "auto"),
      std::invalid_argument);
  EXPECT_THROW(make_flags({"--hash-impl=shani", "--hash-impl=portable"}),
               std::invalid_argument);
}

TEST(Flags, UintParsesAndDefaults) {
  const auto f = make_flags({"--ingest-threads=8"});
  EXPECT_EQ(f.get_uint("ingest-threads", 0), 8u);
  EXPECT_EQ(f.get_uint("missing", 4), 4u);
}

TEST(Flags, UintEnforcesRange) {
  const auto f = make_flags({"--ingest-threads=300"});
  EXPECT_THROW(f.get_uint("ingest-threads", 0, 0, 256),
               std::invalid_argument);
  EXPECT_EQ(f.get_uint("ingest-threads", 0, 0, 512), 300u);
  const auto g = make_flags({"--depth=0"});
  EXPECT_THROW(g.get_uint("depth", 1, 1, 100), std::invalid_argument);
}

TEST(Flags, UintRejectsNonNumeric) {
  EXPECT_THROW(make_flags({"--n=-1"}).get_uint("n", 0),
               std::invalid_argument);
  EXPECT_THROW(make_flags({"--n=4x"}).get_uint("n", 0),
               std::invalid_argument);
  EXPECT_THROW(make_flags({"--n="}).get_uint("n", 0),
               std::invalid_argument);
  // a bare "--n" parses as "true", which is not an unsigned integer
  EXPECT_THROW(make_flags({"--n"}).get_uint("n", 0), std::invalid_argument);
}

TEST(Flags, UintRejectsOverflow) {
  EXPECT_THROW(make_flags({"--n=99999999999999999999"}).get_uint("n", 0),
               std::invalid_argument);
}

TEST(Flags, SizeParsesSuffixes) {
  EXPECT_EQ(make_flags({"--x=4"}).get_size("x", 0), 4u);
  EXPECT_EQ(make_flags({"--x=4K"}).get_size("x", 0), 4096u);
  EXPECT_EQ(make_flags({"--x=4k"}).get_size("x", 0), 4096u);
  EXPECT_EQ(make_flags({"--x=2M"}).get_size("x", 0), 2ull << 20);
  EXPECT_EQ(make_flags({"--x=3g"}).get_size("x", 0), 3ull << 30);
  EXPECT_EQ(make_flags({"--x=0"}).get_size("x", 7), 0u);
}

TEST(Flags, SizeAppliesUnitToBareNumbersOnly) {
  // --index-cache-mb style: a bare "8" means 8 MB, an explicit "512K"
  // overrides the unit.
  const auto f = make_flags({"--cache=8"});
  EXPECT_EQ(f.get_size("cache", 0, 0, UINT64_MAX, 1ull << 20), 8ull << 20);
  const auto g = make_flags({"--cache=512K"});
  EXPECT_EQ(g.get_size("cache", 0, 0, UINT64_MAX, 1ull << 20), 512u << 10);
  // The default is already in bytes: no unit scaling when absent.
  EXPECT_EQ(make_flags({}).get_size("cache", 123, 0, UINT64_MAX, 1ull << 20),
            123u);
}

TEST(Flags, SizeEnforcesRangeOnScaledValue) {
  const auto f = make_flags({"--cache=1"});
  // 1 MB after scaling is inside [64K, 1G]...
  EXPECT_EQ(f.get_size("cache", 0, 64u << 10, 1u << 30, 1ull << 20),
            1ull << 20);
  // ...but 1 raw byte (unit 1) is below the 64K floor.
  EXPECT_THROW(f.get_size("cache", 0, 64u << 10, 1u << 30),
               std::invalid_argument);
  EXPECT_THROW(make_flags({"--cache=2G"})
                   .get_size("cache", 0, 0, 1u << 30),
               std::invalid_argument);
}

TEST(Flags, SizeRejectsMalformedAndOverflow) {
  EXPECT_THROW(make_flags({"--x=-1"}).get_size("x", 0),
               std::invalid_argument);
  EXPECT_THROW(make_flags({"--x=4KB"}).get_size("x", 0),
               std::invalid_argument);
  EXPECT_THROW(make_flags({"--x=K"}).get_size("x", 0),
               std::invalid_argument);
  EXPECT_THROW(make_flags({"--x="}).get_size("x", 0), std::invalid_argument);
  EXPECT_THROW(make_flags({"--x"}).get_size("x", 0), std::invalid_argument);
  // 2^64 bytes: overflows in the digit loop.
  EXPECT_THROW(make_flags({"--x=18446744073709551616"}).get_size("x", 0),
               std::invalid_argument);
  // Fits as a number but overflows when scaled by the suffix.
  EXPECT_THROW(make_flags({"--x=99999999999999999G"}).get_size("x", 0),
               std::invalid_argument);
}

TEST(Flags, SizeRejectsDuplicateDefinitions) {
  EXPECT_THROW(make_flags({"--cache=8", "--cache=16M"}),
               std::invalid_argument);
}

TEST(Flags, RejectsDuplicateDefinitions) {
  EXPECT_THROW(make_flags({"--ecs=512", "--ecs=1024"}),
               std::invalid_argument);
  EXPECT_THROW(make_flags({"--verify", "--verify"}), std::invalid_argument);
}

TEST(Flags, CollectsPositional) {
  const auto f = make_flags({"input.img", "--x=1", "out.img"});
  EXPECT_EQ(f.positional(),
            (std::vector<std::string>{"input.img", "out.img"}));
}

}  // namespace
}  // namespace mhd
