// CRC32C kernel correctness and differential lockdown: known vectors,
// chaining, and bit-identical output from every compiled-in kernel across
// lengths, alignments and contents. The framing layer's corruption
// detection is only as good as these invariants.
#include "mhd/util/crc32c.h"

#include <gtest/gtest.h>

#include <cstring>

#include "mhd/util/random.h"

namespace mhd {
namespace {

std::uint32_t crc_of(const std::string& s) {
  return crc32c(0, as_bytes(s));
}

TEST(Crc32c, KnownVectors) {
  // RFC 3720 / common test vectors for CRC32C (Castagnoli).
  EXPECT_EQ(crc_of(""), 0x00000000u);
  EXPECT_EQ(crc_of("a"), 0xC1D04330u);
  EXPECT_EQ(crc_of("123456789"), 0xE3069283u);
  EXPECT_EQ(crc_of("The quick brown fox jumps over the lazy dog"),
            0x22620404u);
  // 32 bytes of zeros (iSCSI test pattern).
  const ByteVec zeros(32, 0);
  EXPECT_EQ(crc32c(0, zeros), 0x8A9136AAu);
  const ByteVec ones(32, 0xFF);
  EXPECT_EQ(crc32c(0, ones), 0x62A8AB43u);
}

TEST(Crc32c, ChainingMatchesOneShot) {
  Xoshiro256 rng(7);
  ByteVec data(4096);
  for (auto& b : data) b = static_cast<Byte>(rng());
  const std::uint32_t whole = crc32c(0, data);
  for (const std::size_t split : {std::size_t{0}, std::size_t{1},
                                  std::size_t{7}, std::size_t{64},
                                  std::size_t{1000}, data.size()}) {
    const std::uint32_t a = crc32c(0, {data.data(), split});
    const std::uint32_t b =
        crc32c(a, {data.data() + split, data.size() - split});
    EXPECT_EQ(b, whole) << "split=" << split;
  }
}

TEST(Crc32c, KernelsAreBitIdentical) {
  Xoshiro256 rng(11);
  ByteVec buf(8192 + 16);
  for (auto& b : buf) b = static_cast<Byte>(rng());

  int exercised = 0;
  for (const auto& k : crc32c_kernels()) {
    if (!k.supported) continue;
    ++exercised;
    // Sweep lengths around word boundaries and all 8 alignments.
    for (std::size_t align = 0; align < 8; ++align) {
      for (const std::size_t len :
           {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{7},
            std::size_t{8}, std::size_t{9}, std::size_t{15}, std::size_t{16},
            std::size_t{63}, std::size_t{64}, std::size_t{65},
            std::size_t{255}, std::size_t{1024}, std::size_t{8191}}) {
        const std::uint32_t want =
            crc32c_portable(0, buf.data() + align, len);
        EXPECT_EQ(k.fn(0, buf.data() + align, len), want)
            << k.name << " align=" << align << " len=" << len;
        // Nonzero seed chaining too.
        EXPECT_EQ(k.fn(0xDEADBEEF, buf.data() + align, len),
                  crc32c_portable(0xDEADBEEF, buf.data() + align, len))
            << k.name << " align=" << align << " len=" << len;
      }
    }
  }
  EXPECT_GE(exercised, 1);
  SCOPED_TRACE(std::string("dispatch resolves to ") + crc32c_impl_name());
}

TEST(Crc32c, RandomBuffersAcrossKernels) {
  Xoshiro256 rng(23);
  for (int i = 0; i < 200; ++i) {
    const std::size_t len = rng.below(2048);
    ByteVec buf(len);
    for (auto& b : buf) b = static_cast<Byte>(rng());
    const std::uint32_t want = crc32c_portable(0, buf.data(), buf.size());
    EXPECT_EQ(crc32c(0, buf), want) << "i=" << i;
    for (const auto& k : crc32c_kernels()) {
      if (!k.supported) continue;
      EXPECT_EQ(k.fn(0, buf.data(), buf.size()), want)
          << k.name << " i=" << i;
    }
  }
}

TEST(Crc32c, EveryBitFlipChangesChecksum) {
  // The property framing relies on: CRC32C detects any single-bit error.
  ByteVec buf(64, 0x5A);
  const std::uint32_t clean = crc32c(0, buf);
  for (std::size_t byte = 0; byte < buf.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      buf[byte] ^= static_cast<Byte>(1u << bit);
      EXPECT_NE(crc32c(0, buf), clean) << "byte=" << byte << " bit=" << bit;
      buf[byte] ^= static_cast<Byte>(1u << bit);
    }
  }
}

}  // namespace
}  // namespace mhd
