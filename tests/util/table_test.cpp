#include "mhd/util/table.h"

#include <gtest/gtest.h>

namespace mhd {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"Algorithm", "DER"});
  t.add_row({"BF-MHD", "4.01"});
  t.add_row({"Bimodal", "3.70"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Algorithm"), std::string::npos);
  EXPECT_NE(s.find("BF-MHD"), std::string::npos);
  EXPECT_NE(s.find("3.70"), std::string::npos);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"A", "LongHeader"});
  t.add_row({"x", "1"});
  const std::string s = t.to_string();
  // The numeric column is right-aligned to the header width.
  EXPECT_NE(s.find("         1"), std::string::npos);
}

TEST(TextTable, CsvOutput) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(std::uint64_t{42}), "42");
}

TEST(TextTable, ToleratesShortRows) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NO_THROW({ const auto s = t.to_string(); (void)s; });
}

}  // namespace
}  // namespace mhd
