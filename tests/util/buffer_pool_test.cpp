// BufferPool: the zero-realloc contract behind steady-state ingest.
// Covers slab reuse under churn, the oversize drop, high-water trimming,
// adoption of foreign buffers, and a concurrent acquire/release storm that
// the tsan preset runs under ThreadSanitizer.
#include "mhd/util/buffer_pool.h"

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mhd/util/random.h"

namespace mhd {
namespace {

TEST(BufferPool, AcquireStartsEmptyAndFresh) {
  BufferPool pool;
  ByteVec buf = pool.acquire();
  EXPECT_TRUE(buf.empty());
  const auto s = pool.stats();
  EXPECT_EQ(s.acquires, 1u);
  EXPECT_EQ(s.reuses, 0u);
  EXPECT_EQ(s.outstanding, 1u);
}

TEST(BufferPool, ReleasedSlabKeepsCapacityAndIsReused) {
  BufferPool pool;
  ByteVec buf = pool.acquire();
  buf.resize(10000);
  const std::size_t cap = buf.capacity();
  pool.release(std::move(buf));

  ByteVec again = pool.acquire();
  EXPECT_TRUE(again.empty());
  EXPECT_GE(again.capacity(), cap);  // recycled storage, not a fresh vec
  const auto s = pool.stats();
  EXPECT_EQ(s.acquires, 2u);
  EXPECT_EQ(s.reuses, 1u);
  EXPECT_EQ(s.releases, 1u);
}

// Steady-state churn: after the first lap every acquire must be served
// from the free list — this is the "zero heap allocations per chunk"
// property the ingest path relies on.
TEST(BufferPool, SteadyStateChurnAllocatesOnlyOnce) {
  BufferPool pool;
  constexpr int kLaps = 200;
  for (int lap = 0; lap < kLaps; ++lap) {
    ByteVec buf = pool.acquire();
    buf.resize(4096);
    pool.release(std::move(buf));
  }
  const auto s = pool.stats();
  EXPECT_EQ(s.acquires, static_cast<std::uint64_t>(kLaps));
  EXPECT_EQ(s.reuses, static_cast<std::uint64_t>(kLaps - 1));
  EXPECT_EQ(s.free_count, 1u);
  EXPECT_EQ(s.outstanding, 0u);
}

TEST(BufferPool, AdoptsForeignBuffers) {
  BufferPool pool;
  ByteVec foreign(512, Byte{0xAB});  // never came from the pool
  pool.release(std::move(foreign));
  const auto s = pool.stats();
  EXPECT_EQ(s.free_count, 1u);
  EXPECT_EQ(s.outstanding, 0u);  // saturating: never underflows

  ByteVec buf = pool.acquire();
  EXPECT_TRUE(buf.empty());  // adopted slabs come back cleared
  EXPECT_GE(buf.capacity(), 512u);
}

TEST(BufferPool, OversizeSlabsAreDroppedNotPooled) {
  BufferPool pool;
  ByteVec huge(BufferPool::kMaxSlabBytes + 1);
  pool.release(std::move(huge));
  const auto s = pool.stats();
  EXPECT_EQ(s.dropped_oversize, 1u);
  EXPECT_EQ(s.free_count, 0u);

  // Exactly at the bound is still pooled.
  ByteVec edge(BufferPool::kMaxSlabBytes);
  pool.release(std::move(edge));
  EXPECT_EQ(pool.stats().free_count, 1u);
}

TEST(BufferPool, ExplicitTrimDropsEverything) {
  BufferPool pool;
  std::vector<ByteVec> held;
  for (int i = 0; i < 8; ++i) {
    ByteVec b = pool.acquire();
    b.resize(256);  // capacity-0 buffers aren't worth pooling
    held.push_back(std::move(b));
  }
  for (auto& b : held) pool.release(std::move(b));
  EXPECT_EQ(pool.stats().free_count, 8u);

  pool.trim();
  const auto s = pool.stats();
  EXPECT_EQ(s.free_count, 0u);
  EXPECT_EQ(s.outstanding_high_water, 0u);
  EXPECT_EQ(s.dropped_trim, 8u);
}

// After a burst of 64 concurrently-outstanding buffers drains, the
// periodic trim must shrink the free list toward the *current* working
// set, not the historical peak: run single-buffer churn past the trim
// interval and check the burst's slabs were let go.
TEST(BufferPool, HighWaterTrimReleasesBurstFootprint) {
  BufferPool pool;
  std::vector<ByteVec> burst;
  for (int i = 0; i < 64; ++i) {
    ByteVec b = pool.acquire();
    b.resize(1024);
    burst.push_back(std::move(b));
  }
  EXPECT_EQ(pool.stats().outstanding_high_water, 64u);
  for (auto& b : burst) pool.release(std::move(b));
  EXPECT_EQ(pool.stats().free_count, 64u);

  // One trim fires somewhere in this churn; after it, and the high-water
  // decay to the now-small outstanding count, a second interval of churn
  // trims down to 1 outstanding + slack.
  for (std::uint64_t i = 0; i < 2 * BufferPool::kTrimInterval; ++i) {
    ByteVec b = pool.acquire();
    pool.release(std::move(b));
  }
  const auto s = pool.stats();
  EXPECT_LE(s.free_count, 1u + BufferPool::kTrimSlack);
  EXPECT_GT(s.dropped_trim, 0u);
}

// Concurrent acquire/release storm across threads; the tsan preset runs
// this under ThreadSanitizer to prove the pool is race-free. Each thread
// also writes into its buffers so TSan can see any slab handed to two
// owners at once.
TEST(BufferPool, ConcurrentChurnIsRaceFree) {
  BufferPool pool;
  constexpr int kThreads = 4;
  constexpr int kLapsPerThread = 3000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
      std::vector<ByteVec> held;
      for (int lap = 0; lap < kLapsPerThread; ++lap) {
        ByteVec buf = pool.acquire();
        buf.resize(64 + rng() % 4096);
        buf[0] = static_cast<Byte>(lap);
        buf.back() = static_cast<Byte>(t);
        held.push_back(std::move(buf));
        // Hold a few buffers to create real concurrency in `outstanding`.
        if (held.size() > 4 || rng() % 2) {
          pool.release(std::move(held.back()));
          held.pop_back();
        }
      }
      for (auto& b : held) pool.release(std::move(b));
    });
  }
  for (auto& th : threads) th.join();

  const auto s = pool.stats();
  EXPECT_EQ(s.acquires,
            static_cast<std::uint64_t>(kThreads) * kLapsPerThread);
  EXPECT_EQ(s.outstanding, 0u);
  EXPECT_EQ(s.acquires - s.reuses,
            s.free_count + s.dropped_oversize + s.dropped_trim)
      << "every allocated slab is pooled, dropped, or accounted";
}

TEST(BufferPool, GlobalPoolSingletonIsStable) {
  BufferPool& a = chunk_buffer_pool();
  BufferPool& b = chunk_buffer_pool();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace mhd
