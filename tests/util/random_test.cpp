#include "mhd/util/random.h"

#include <gtest/gtest.h>

#include <set>

namespace mhd {
namespace {

TEST(SplitMix64, IsDeterministicAndMixing) {
  EXPECT_EQ(splitmix64(0), splitmix64(0));
  EXPECT_NE(splitmix64(0), splitmix64(1));
  // Consecutive inputs should not produce consecutive outputs.
  EXPECT_GT(splitmix64(1) ^ splitmix64(2), 1ULL << 32);
}

TEST(Xoshiro256, SameSeedSameSequence) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Xoshiro256, BelowCoversRange) {
  Xoshiro256 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, Uniform01Bounds) {
  Xoshiro256 rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro256, ChanceExtremes) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Xoshiro256, ChanceApproximatesProbability) {
  Xoshiro256 rng(11);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

}  // namespace
}  // namespace mhd
