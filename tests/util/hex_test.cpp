#include "mhd/util/hex.h"

#include <gtest/gtest.h>

namespace mhd {
namespace {

TEST(Hex, EncodesKnownBytes) {
  const ByteVec data = {0x00, 0x01, 0x0F, 0x10, 0xAB, 0xFF};
  EXPECT_EQ(hex_encode(data), "00010f10abff");
}

TEST(Hex, EncodesEmpty) { EXPECT_EQ(hex_encode({}), ""); }

TEST(Hex, DecodeInvertsEncode) {
  ByteVec data;
  for (int i = 0; i < 256; ++i) data.push_back(static_cast<Byte>(i));
  const auto decoded = hex_decode(hex_encode(data));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(Hex, DecodeAcceptsUppercase) {
  const auto decoded = hex_decode("ABFF");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, (ByteVec{0xAB, 0xFF}));
}

TEST(Hex, DecodeRejectsOddLength) {
  EXPECT_FALSE(hex_decode("abc").has_value());
}

TEST(Hex, DecodeRejectsNonHexDigit) {
  EXPECT_FALSE(hex_decode("zz").has_value());
  EXPECT_FALSE(hex_decode("0g").has_value());
}

}  // namespace
}  // namespace mhd
